// Package store is the durable answer store: an append-only write-ahead
// log of crowd answers and session events plus periodic snapshot
// compaction. Crowd answers are the most expensive resource the system
// has — they are collected from humans over days (§6.2–6.3 of the paper)
// and paid for — so a process restart must never re-ask a question that
// was already answered. The store makes the engine's CrowdCache durable:
// every answer is appended to the WAL before the run proceeds, and
// recovery replays the log (truncating a torn final record) into a
// core.Cache that reprimes a restarted engine via Config.Prime.
//
// On-disk layout of a store directory:
//
//	wal.log       append-only log: 8-byte magic, then framed records
//	snapshot.snap compacted state: same framing, answers deduplicated
//
// Each record is framed as
//
//	uint32 LE payload length | uint32 LE CRC32(payload) | payload
//
// and the payload is a type byte followed by type-specific fields
// (strings as uvarint length + bytes, supports as 8-byte LE float bits).
// See DESIGN.md, "Durability".
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"oassis/internal/core"
)

// RecordType discriminates WAL record payloads.
type RecordType byte

// Record types.
const (
	// RecAnswer is one crowd answer: (question, member, support, kind,
	// counted), exactly what core.Cache holds plus the counted flag.
	RecAnswer RecordType = 1
	// RecClassified is a classification event: a lattice node was
	// explicitly marked significant or insignificant. Audit-only —
	// recovery re-derives classifications by replaying answers — and
	// therefore dropped at snapshot compaction.
	RecClassified RecordType = 2
	// RecSession binds the store to a query (the canonical query text);
	// reopening against a different query is refused.
	RecSession RecordType = 3
	// RecJoin records a crowd member claiming a slot (member ID and
	// display name), so a restarted server restores its roster.
	RecJoin RecordType = 4
	// RecIssued records a question handed out to a member before its
	// answer arrived. An issued record without a matching RecAnswer marks
	// a question that was in flight at a crash; recovery surfaces those as
	// Recovered.InFlight so a restarted server re-issues rather than loses
	// them. Issued records whose answers are durable are dropped at
	// snapshot compaction.
	RecIssued RecordType = 5
	// RecPlan binds the store to a plan fingerprint (the content address
	// of the compiled plan the session executes). Recovery surfaces it as
	// Recovered.Plan, so a restarted server detects domain drift — the
	// same query recompiling to a different plan because the ontology
	// changed — instead of silently replaying answers into a different
	// assignment space.
	RecPlan RecordType = 6
)

// String returns the record type's metric-label name.
func (t RecordType) String() string {
	switch t {
	case RecAnswer:
		return "answer"
	case RecClassified:
		return "classified"
	case RecSession:
		return "session"
	case RecJoin:
		return "join"
	case RecIssued:
		return "issued"
	case RecPlan:
		return "plan"
	default:
		return "unknown"
	}
}

// Record is the decoded form of one WAL entry. Fields are a union over the
// record types: Question/Member/Support/Kind/Counted for RecAnswer,
// Node/Significant for RecClassified, Note for RecSession (query text),
// RecJoin (display name, with Member holding the slot ID) and RecPlan
// (plan fingerprint).
type Record struct {
	Type RecordType

	Question string
	Member   string
	Support  float64
	Kind     core.QuestionKind
	Counted  bool

	Node        string
	Significant bool

	Note string
}

// MaxRecordSize bounds a record payload; larger length prefixes are
// treated as corruption (they would otherwise let a torn length word
// demand an arbitrary allocation).
const MaxRecordSize = 1 << 20

const frameHeader = 8 // payload length + CRC32

// Decode errors. A torn record is an incomplete final append (crash
// mid-write): recovery truncates it. Corruption is a framing, CRC or
// payload violation: recovery stops there and truncates the rest.
var (
	// ErrTorn reports a record cut short by a crash mid-append.
	ErrTorn = errors.New("store: torn record")
	// ErrCorrupt reports a record that fails its CRC or payload checks.
	ErrCorrupt = errors.New("store: corrupt record")
)

// appendString encodes a string as uvarint length + bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodePayload renders the record's payload (no framing).
func encodePayload(r Record) []byte {
	b := []byte{byte(r.Type)}
	switch r.Type {
	case RecAnswer:
		b = appendString(b, r.Question)
		b = appendString(b, r.Member)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Support))
		b = append(b, byte(r.Kind), boolByte(r.Counted))
	case RecClassified:
		b = appendString(b, r.Node)
		b = append(b, boolByte(r.Significant))
	case RecSession:
		b = appendString(b, r.Note)
	case RecJoin:
		b = appendString(b, r.Member)
		b = appendString(b, r.Note)
	case RecIssued:
		b = appendString(b, r.Question)
		b = appendString(b, r.Member)
	case RecPlan:
		b = appendString(b, r.Note)
	}
	return b
}

// EncodeRecord frames the record for appending to a log.
func EncodeRecord(r Record) []byte {
	payload := encodePayload(r)
	b := make([]byte, 0, frameHeader+len(payload))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// decodeString reads a uvarint-prefixed string, rejecting lengths that
// exceed the remaining payload before allocating. Non-minimal uvarint
// encodings are rejected too: every record has exactly one valid byte
// representation, so recovery offsets are never ambiguous.
func decodeString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || n != uvarintLen(l) || l > uint64(len(b)-n) {
		return "", nil, ErrCorrupt
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

// uvarintLen is the minimal uvarint encoding size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func decodeBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 || b[0] > 1 {
		return false, nil, ErrCorrupt
	}
	return b[0] == 1, b[1:], nil
}

// DecodeRecord decodes the first framed record in b, returning the record
// and the number of bytes consumed. It returns ErrTorn when b holds only a
// prefix of a record (the crash-truncated tail of a log) and ErrCorrupt
// when the frame or payload is invalid; len(b) == 0 decodes to (zero, 0,
// nil) with consumed 0, letting callers treat a clean end of log uniformly.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) == 0 {
		return Record{}, 0, nil
	}
	if len(b) < frameHeader {
		return Record{}, 0, ErrTorn
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length == 0 || length > MaxRecordSize {
		return Record{}, 0, ErrCorrupt
	}
	if uint64(len(b)-frameHeader) < uint64(length) {
		return Record{}, 0, ErrTorn
	}
	payload := b[frameHeader : frameHeader+int(length)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeader + int(length), nil
}

func decodePayload(payload []byte) (Record, error) {
	rec := Record{Type: RecordType(payload[0])}
	rest := payload[1:]
	var err error
	switch rec.Type {
	case RecAnswer:
		if rec.Question, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
		if rec.Member, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
		if len(rest) < 8 {
			return Record{}, ErrCorrupt
		}
		rec.Support = math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
		rest = rest[8:]
		if len(rest) < 1 || rest[0] > byte(core.KindPruning) {
			return Record{}, ErrCorrupt
		}
		rec.Kind = core.QuestionKind(rest[0])
		rest = rest[1:]
		if rec.Counted, rest, err = decodeBool(rest); err != nil {
			return Record{}, err
		}
	case RecClassified:
		if rec.Node, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
		if rec.Significant, rest, err = decodeBool(rest); err != nil {
			return Record{}, err
		}
	case RecSession:
		if rec.Note, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
	case RecJoin:
		if rec.Member, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
		if rec.Note, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
	case RecIssued:
		if rec.Question, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
		if rec.Member, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
	case RecPlan:
		if rec.Note, rest, err = decodeString(rest); err != nil {
			return Record{}, err
		}
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, rec.Type)
	}
	if len(rest) != 0 {
		return Record{}, ErrCorrupt
	}
	return rec, nil
}
