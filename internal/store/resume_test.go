package store

import (
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// resumeQuery is the restricted Figure 3 query of the paper over the
// sample ontology — small enough to enumerate, large enough that a run
// asks a meaningful number of questions.
const resumeQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4
`

func buildResumeSpace(t testing.TB) (*ontology.Sample, *assign.Space, float64) {
	t.Helper()
	s := ontology.NewSample()
	q := oassisql.MustParse(resumeQuery)
	bs, err := sparql.Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	maps := make([]map[string]vocab.Term, len(bs))
	for i, b := range bs {
		maps[i] = b
	}
	sp, err := assign.NewSpace(s.Voc, q, maps, sparql.Anchors(s.Voc, q.Where))
	if err != nil {
		t.Fatal(err)
	}
	return s, sp, q.Support
}

// driveSession answers every surfaced question from db's personal history
// until the run ends or stopAfter answers were given, journaling each
// question as issued before answering it — exactly what oassis-server does.
// When it stops early it simulates a crash: the store is closed with the
// last question issued but unanswered, and only then is the engine unwound
// (so the unwinding cannot pollute the log with answers the member never
// gave). It returns the question keys it answered, in order, and the run
// result (nil when crashed).
func driveSession(t *testing.T, sp *assign.Space, theta float64, st *Store,
	prime *core.Cache, db *crowd.PersonalDB, stopAfter int) ([]string, *core.Result) {
	t.Helper()
	cfg := core.Config{Space: sp, Theta: theta, Agg: aggregate.NewFixedSample(1)}
	if st != nil {
		cfg.Store = st
	}
	if prime != nil {
		cfg.Prime = prime
	}
	sess := core.NewSession(cfg, []string{"u1"})
	var asked []string
	for {
		qs := sess.Next()
		if qs == nil {
			return asked, sess.Close()
		}
		q := qs[0]
		if q.Specialization() {
			t.Fatal("unexpected specialization question (ratio is 0)")
		}
		if st != nil {
			if err := st.AppendIssued(q.Facts.Key(), "u1"); err != nil {
				t.Fatal(err)
			}
		}
		if stopAfter > 0 && len(asked) == stopAfter {
			// Crash point: the previous answer is durable (the engine
			// recorded it before surfacing this question) and the current
			// question is journaled as issued but unanswered. Closing the
			// store first means the engine's own unwinding below — Leave
			// makes the in-flight question report support 0 — cannot
			// pollute the log with answers the member never gave.
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			sess.Leave("u1")
			sess.Close()
			return asked, nil
		}
		asked = append(asked, q.Facts.Key())
		if err := sess.Submit(q.ID, core.AnswerSupport(crowd.FiveLevel(db.Support(q.Facts)))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionKillAndRestart is the acceptance scenario: a session stopped
// mid-query and restarted against the same store completes the query
// re-asking zero already-answered questions and reaches the same result as
// an uninterrupted run — at every possible crash point. The question that
// was in flight at the crash is surfaced by recovery (Recovered.InFlight)
// and re-issued as the restarted run's first question: never lost, never
// double-counted.
func TestSessionKillAndRestart(t *testing.T) {
	s, sp, theta := buildResumeSpace(t)
	u1, _ := crowd.SampleDBs(s)

	// Reference: an uninterrupted run without a store.
	refAsked, refRes := driveSession(t, sp, theta, nil, nil, u1, 0)
	if refRes == nil || len(refAsked) < 5 {
		t.Fatalf("reference run asked only %d questions", len(refAsked))
	}

	for stop := 1; stop < len(refAsked); stop++ {
		dir := t.TempDir()
		st1, rec1 := mustOpen(t, dir, Options{})
		if len(rec1.Answers) != 0 {
			t.Fatal("fresh store not empty")
		}
		asked1, res := driveSession(t, sp, theta, st1, nil, u1, stop)
		if res != nil {
			t.Fatalf("stop=%d: run finished before the crash point", stop)
		}

		st2, rec2 := mustOpen(t, dir, Options{})
		if len(rec2.Answers) != stop {
			t.Fatalf("stop=%d: recovered %d answers", stop, len(rec2.Answers))
		}
		for i, a := range rec2.Answers {
			if a.Question != asked1[i] {
				t.Fatalf("stop=%d: recovered answer %d is %q, want %q", stop, i, a.Question, asked1[i])
			}
		}
		// Exactly one question was in flight at the crash — the one issued
		// but never answered — and it is not among the recovered answers.
		if len(rec2.InFlight) != 1 {
			t.Fatalf("stop=%d: %d in-flight questions recovered, want 1", stop, len(rec2.InFlight))
		}
		inFlight := rec2.InFlight[0]
		if inFlight.Member != "u1" {
			t.Errorf("stop=%d: in-flight member %q", stop, inFlight.Member)
		}
		for _, a := range rec2.Answers {
			if a.Question == inFlight.Question {
				t.Fatalf("stop=%d: in-flight question %q also recovered as answered", stop, inFlight.Question)
			}
		}

		asked2, res2 := driveSession(t, sp, theta, st2, rec2.PrimeCache(), u1, 0)
		if res2 == nil {
			t.Fatalf("stop=%d: resumed run did not finish", stop)
		}
		st2.Close()

		// The in-flight question is re-issued first, not lost.
		if len(asked2) == 0 || asked2[0] != inFlight.Question {
			t.Fatalf("stop=%d: in-flight question %q not re-issued first (got %v)",
				stop, inFlight.Question, asked2)
		}

		// Zero duplicate questions: nothing asked before the crash is
		// ever re-asked, and the combined sequence is exactly the
		// uninterrupted run's.
		seen := make(map[string]bool, len(asked1))
		for _, q := range asked1 {
			seen[q] = true
		}
		for _, q := range asked2 {
			if seen[q] {
				t.Fatalf("stop=%d: question %q re-asked after restart", stop, q)
			}
		}
		combined := append(append([]string(nil), asked1...), asked2...)
		if len(combined) != len(refAsked) {
			t.Fatalf("stop=%d: %d+%d questions across the crash, want %d",
				stop, len(asked1), len(asked2), len(refAsked))
		}
		for i := range combined {
			if combined[i] != refAsked[i] {
				t.Fatalf("stop=%d: question %d diverged after restart", stop, i)
			}
		}
		if res2.Stats.PrimedAnswers != stop {
			t.Errorf("stop=%d: %d primed answers, want %d", stop, res2.Stats.PrimedAnswers, stop)
		}
		if res2.Stats.StoreErrors != 0 {
			t.Errorf("stop=%d: %d store errors", stop, res2.Stats.StoreErrors)
		}

		// Same MSPs as the uninterrupted run.
		if len(res2.ValidMSPs) != len(refRes.ValidMSPs) {
			t.Fatalf("stop=%d: %d MSPs, want %d", stop, len(res2.ValidMSPs), len(refRes.ValidMSPs))
		}
		for i := range res2.ValidMSPs {
			if res2.ValidMSPs[i].Key() != refRes.ValidMSPs[i].Key() {
				t.Errorf("stop=%d: MSP %d differs from uninterrupted run", stop, i)
			}
		}
	}
}
