package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// File-format magics. The WAL and the snapshot share the record framing
// but carry distinct magics so one can never be mistaken for the other.
var (
	walMagic  = []byte("OASWAL1\n")
	snapMagic = []byte("OASSNP1\n")
)

const (
	walName  = "wal.log"
	snapName = "snapshot.snap"
)

// replayFile decodes every record in b after the magic header. It returns
// the decoded records and the byte offset just past the last good record.
// A torn or corrupt suffix ends the replay at that offset; strict, when
// set, turns any such suffix into an error instead (snapshots are written
// atomically, so damage there is real data loss and must not be papered
// over).
func replayFile(b, magic []byte, strict bool) ([]Record, int64, error) {
	if len(b) < len(magic) {
		if strict || len(b) != 0 {
			return nil, 0, fmt.Errorf("store: short header (%d bytes)", len(b))
		}
		return nil, 0, nil
	}
	if string(b[:len(magic)]) != string(magic) {
		return nil, 0, errors.New("store: bad magic (not a store file)")
	}
	off := int64(len(magic))
	var recs []Record
	for {
		rec, n, err := DecodeRecord(b[off:])
		if err != nil {
			if strict {
				return nil, 0, fmt.Errorf("store: snapshot damaged at offset %d: %w", off, err)
			}
			return recs, off, nil
		}
		if n == 0 {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += int64(n)
	}
}

// openWAL opens (creating if needed) the WAL for appending, replaying its
// contents first and truncating any torn or corrupt tail so the file ends
// on a record boundary. It returns the open file positioned at the end,
// the replayed records, and the number of tail bytes dropped.
func openWAL(dir string) (*os.File, []Record, int64, error) {
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	// An empty or header-torn file restarts from a fresh header.
	if len(b) < len(walMagic) {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		return f, nil, int64(len(b)), nil
	}
	recs, off, err := replayFile(b, walMagic, false)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	dropped := int64(len(b)) - off
	if dropped > 0 {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return f, recs, dropped, nil
}

// readSnapshot loads the snapshot records, strictly: a snapshot is only
// ever installed by an atomic rename, so any damage is reported, not
// truncated. A missing snapshot is an empty store.
func readSnapshot(dir string) ([]Record, error) {
	b, err := os.ReadFile(filepath.Join(dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	recs, _, err := replayFile(b, snapMagic, true)
	return recs, err
}

// writeSnapshot atomically installs recs as the new snapshot: write to a
// temp file, fsync, rename over snapshot.snap, fsync the directory.
func writeSnapshot(dir string, recs []Record) error {
	tmp, err := os.CreateTemp(dir, "snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(snapMagic); err != nil {
		tmp.Close()
		return err
	}
	for _, r := range recs {
		if _, err := tmp.Write(EncodeRecord(r)); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
