package store

import (
	"errors"
	"reflect"
	"testing"

	"oassis/internal/core"
)

// sampleRecords covers every record type and field shape.
func sampleRecords() []Record {
	return []Record{
		{Type: RecSession, Note: "SELECT FACT-SETS ..."},
		{Type: RecJoin, Member: "p00", Note: "ann"},
		{Type: RecAnswer, Question: "Biking doAt Central Park", Member: "p00",
			Support: 0.75, Kind: core.KindConcrete, Counted: true},
		{Type: RecAnswer, Question: "", Member: "", Support: 0, Kind: core.KindPruning},
		{Type: RecAnswer, Question: "q with unicode ± ≤", Member: "u1",
			Support: 1, Kind: core.KindSpecialization, Counted: true},
		{Type: RecClassified, Node: "node-key-17", Significant: true},
		{Type: RecClassified, Node: "", Significant: false},
	}
}

func TestRecordRoundtrip(t *testing.T) {
	for _, want := range sampleRecords() {
		b := EncodeRecord(want)
		got, n, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(b) {
			t.Errorf("decode %+v consumed %d of %d bytes", want, n, len(b))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeRecordStream(t *testing.T) {
	recs := sampleRecords()
	var b []byte
	for _, r := range recs {
		b = append(b, EncodeRecord(r)...)
	}
	var got []Record
	for len(b) > 0 {
		r, n, err := DecodeRecord(b)
		if err != nil || n == 0 {
			t.Fatalf("stream decode: n=%d err=%v", n, err)
		}
		got = append(got, r)
		b = b[n:]
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("stream mismatch: got %d records, want %d", len(got), len(recs))
	}
}

func TestDecodeRecordEmptyAndTorn(t *testing.T) {
	if _, n, err := DecodeRecord(nil); n != 0 || err != nil {
		t.Errorf("empty input: n=%d err=%v", n, err)
	}
	full := EncodeRecord(sampleRecords()[2])
	for cut := 1; cut < len(full); cut++ {
		_, _, err := DecodeRecord(full[:cut])
		if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d/%d bytes: err=%v, want torn or corrupt", cut, len(full), err)
		}
	}
}

func TestDecodeRecordCorruption(t *testing.T) {
	full := EncodeRecord(sampleRecords()[2])
	// CRC flip.
	b := append([]byte(nil), full...)
	b[5] ^= 0xFF
	if _, _, err := DecodeRecord(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("crc flip: err=%v", err)
	}
	// Payload flip.
	b = append([]byte(nil), full...)
	b[len(b)-1] ^= 0xFF
	if _, _, err := DecodeRecord(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("payload flip: err=%v", err)
	}
	// Oversized and zero length words.
	b = append([]byte(nil), full...)
	b[0], b[1], b[2], b[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeRecord(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge length: err=%v", err)
	}
	b[0], b[1], b[2], b[3] = 0, 0, 0, 0
	if _, _, err := DecodeRecord(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero length: err=%v", err)
	}
	// Unknown record type (re-framed with a valid CRC still fails).
	bad := Record{Type: RecordType(99), Note: "x"}
	if _, _, err := DecodeRecord(EncodeRecord(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown type: err=%v", err)
	}
}
