package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its labels in
// appearance order (values unescaped), and the sample value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Key renders the sample's identity as name{k="v",...} with label values
// re-escaped — the same shape Snapshot uses, so tests can index either.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, EscapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses the Prometheus text exposition format (the subset
// WritePrometheus emits: HELP/TYPE comments and sample lines). It exists so
// tests assert on parsed samples instead of eyeballing strings; it rejects
// malformed lines rather than skipping them.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Sample
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses one `name{k="v",...} value` line.
func parseSample(text string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(text, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value in %q", text)
	}
	s.Name = text[:i]
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", text)
	}
	rest := text[i:]
	if rest[0] == '{' {
		labels, n, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[n:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", text, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block, returning the labels and the
// number of input bytes consumed (including both braces).
func parseLabels(text string) ([]Label, int, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		if i >= len(text) {
			return nil, 0, fmt.Errorf("unterminated label block in %q", text)
		}
		if text[i] == '}' {
			return labels, i + 1, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return nil, 0, fmt.Errorf("no '=' in label block %q", text)
		}
		key := text[i : i+eq]
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return nil, 0, fmt.Errorf("unquoted label value in %q", text)
		}
		i++ // past opening quote
		var b strings.Builder
		for {
			if i >= len(text) {
				return nil, 0, fmt.Errorf("unterminated label value in %q", text)
			}
			c := text[i]
			if c == '\\' && i+1 < len(text) {
				switch text[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(text[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return nil, 0, fmt.Errorf("raw newline in label value of %q", text)
			}
			b.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: b.String()})
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}
