package obs

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span (question IDs, members,
// phases).
type Attr struct {
	Key, Value string
}

// A(key, value) builds an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Tracer receives span start/end events from the engine: one span per
// engine round and per issued question, annotated with question IDs and
// phases. Implementations must be safe for concurrent use (the engine
// goroutine and the session caller both emit spans) and must not block —
// spans fire on the question hot path. A tracer observes; it can never
// change what the engine asks or concludes.
type Tracer interface {
	// Begin starts a span and returns the func that ends it. The end func
	// is called exactly once, on an arbitrary goroutine.
	Begin(name string, attrs ...Attr) func()
}

// Begin starts a span on t, tolerating a nil tracer: with no tracer
// attached it returns a shared no-op end func and does no work at all.
func Begin(t Tracer, name string, attrs ...Attr) func() {
	if t == nil {
		return nopEnd
	}
	return t.Begin(name, attrs...)
}

var nopEnd = func() {}

// Span is one completed (or still open) trace span recorded by MemTracer.
type Span struct {
	Name  string
	Attrs []Attr
	Start time.Time
	End   time.Time // zero while the span is open
}

// Duration is End-Start, or zero while the span is open.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Attr returns the value of the named attribute ("" if absent).
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// MemTracer collects spans in memory — the reference Tracer for tests and
// for dumping a session's trace after the fact. The zero value is ready to
// use.
type MemTracer struct {
	mu    sync.Mutex
	spans []*Span
}

// Begin implements Tracer.
func (t *MemTracer) Begin(name string, attrs ...Attr) func() {
	s := &Span{Name: name, Attrs: append([]Attr(nil), attrs...), Start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			end := time.Now()
			t.mu.Lock()
			s.End = end
			t.mu.Unlock()
		})
	}
}

// Spans returns a copy of every span recorded so far, in start order.
func (t *MemTracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
	}
	return out
}

// Len returns how many spans have been recorded.
func (t *MemTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
