// Package obs is the observability layer: a stdlib-only metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text-format
// exposition, plus a lightweight trace-event hook. The paper's workload is
// crowd-latency-bound — answers take seconds to days (§6.2), not CPU — so
// the instruments that matter are in-flight gauges and per-answer latency
// histograms, sampled live while a session serves traffic.
//
// All instruments are safe for concurrent use and cheap on the hot path:
// a Counter increment is one atomic add, a Histogram observation is two
// atomic adds plus a bucket scan. Instrumented code must behave
// identically whether or not a registry is attached — instruments are
// write-only from the engine's point of view, which is what makes the
// metrics-on/metrics-off equivalence provable.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value pair qualifying a metric, e.g. {kind, concrete}.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the instrument families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n (negative deltas are ignored; counters never decrease).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.n.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down (e.g. questions in flight).
type Gauge struct {
	n atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add moves the value by delta.
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram counts observations into fixed cumulative buckets. The bucket
// bounds are upper limits; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (q in [0, 1]) from the cumulative
// buckets by linear interpolation within the containing bucket — the same
// estimate Prometheus's histogram_quantile computes on a scrape. With no
// observations it returns 0; a quantile landing in the +Inf bucket is
// clamped to the largest finite bound (there is no upper edge to
// interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is a bucket layout spanning the crowd-answer regime: from
// milliseconds (simulated members) to minutes (humans thinking).
var LatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// metric is one labeled time series inside a family.
type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every label combination of one metric name.
type family struct {
	name string
	help string
	kind metricKind

	mu      sync.Mutex
	series  map[string]*metric // by canonical label key
	order   []string           // label keys in first-registration order
	buckets []float64          // histograms only
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, including
// concurrent registration of the same metric (the first registration wins
// and later calls return the same instrument).
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelKey canonicalizes a label set (sorted by key) for series identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or creates the family and the labeled series within it.
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels []Label) *metric {
	name = sanitizeName(name)
	r.mu.Lock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind,
			series: make(map[string]*metric), buckets: buckets}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	r.mu.Unlock()

	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = &metric{labels: append([]Label(nil), labels...)}
		switch f.kind {
		case kindCounter:
			m.c = &Counter{}
		case kindGauge:
			m.g = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: append([]float64(nil), f.buckets...)}
			sort.Float64s(h.bounds)
			h.counts = make([]atomic.Uint64, len(h.bounds)+1)
			m.h = h
		}
		f.series[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter finds or creates the named counter with the given labels. If the
// name is already registered as a different instrument kind, a detached
// counter is returned so the caller keeps working (the mismatch is a
// programming error, but observability must never crash the run).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if c := r.lookup(name, help, kindCounter, nil, labels).c; c != nil {
		return c
	}
	return &Counter{}
}

// Gauge finds or creates the named gauge with the given labels (detached on
// a kind mismatch, like Counter).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if g := r.lookup(name, help, kindGauge, nil, labels).g; g != nil {
		return g
	}
	return &Gauge{}
}

// Histogram finds or creates the named histogram with the given bucket
// upper bounds (nil defaults to LatencyBuckets). The bounds of the first
// registration win for the whole family; a kind mismatch returns a
// detached histogram, like Counter.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	if h := r.lookup(name, help, kindHistogram, buckets, labels).h; h != nil {
		return h
	}
	h := &Histogram{bounds: append([]float64(nil), buckets...)}
	sort.Float64s(h.bounds)
	h.counts = make([]atomic.Uint64, len(h.bounds)+1)
	return h
}
