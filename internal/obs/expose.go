package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// sanitizeName coerces a metric or label name into the Prometheus alphabet
// ([a-zA-Z_:][a-zA-Z0-9_:]* for metrics; label names additionally may not
// contain ':'). Invalid runes become '_' and an empty or digit-led name is
// prefixed with '_', so exposition output is always parseable no matter
// what the instrumenting code passed in.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName is sanitizeName without the ':' allowance.
func sanitizeLabelName(name string) string {
	return strings.ReplaceAll(sanitizeName(name), ":", "_")
}

// EscapeLabelValue escapes a label value for the Prometheus text format:
// backslash, double quote, and newline become \\, \", and \n. Every other
// byte passes through untouched (values are arbitrary UTF-8).
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// UnescapeLabelValue inverts EscapeLabelValue.
func UnescapeLabelValue(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default: // unknown escape: keep both bytes
				b.WriteByte(v[i])
				b.WriteByte(v[i+1])
			}
			i++
			continue
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline only (quotes are
// legal there).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatLabels renders {k="v",...} with extra appended last; "" when empty.
func formatLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4), families in registration order and
// series within a family in first-registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		series := make([]*metric, 0, len(f.order))
		for _, key := range f.order {
			series = append(series, f.series[key])
		}
		f.mu.Unlock()
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range series {
			if err := writeSeries(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries writes the sample line(s) of one labeled series.
func writeSeries(w io.Writer, f *family, m *metric) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(m.labels), m.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(m.labels), m.g.Value())
		return err
	default:
		h := m.h
		// Cumulative bucket counts, then sum and count.
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := L("le", formatValue(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, formatLabels(m.labels, le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, formatLabels(m.labels, L("le", "+Inf")), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, formatLabels(m.labels), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, formatLabels(m.labels), h.Count())
		return err
	}
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format — mount it on GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Snapshot flattens the registry into name{labels} -> value samples:
// counters and gauges one sample each, histograms as _sum and _count. It
// backs the expvar (/debug/vars) view and the bench registry dump.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range fams {
		f.mu.Lock()
		for _, key := range f.order {
			m := f.series[key]
			ls := formatLabels(m.labels)
			switch f.kind {
			case kindCounter:
				out[f.name+ls] = float64(m.c.Value())
			case kindGauge:
				out[f.name+ls] = float64(m.g.Value())
			default:
				out[f.name+"_sum"+ls] = m.h.Sum()
				out[f.name+"_count"+ls] = float64(m.h.Count())
			}
		}
		f.mu.Unlock()
	}
	return out
}
