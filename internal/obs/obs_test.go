package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", L("route", "/x"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never decrease
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same instrument.
	if again := r.Counter("reqs_total", "requests", L("route", "/x")); again != c {
		t.Error("re-registration returned a different counter")
	}
	// Different labels are a different series.
	if other := r.Counter("reqs_total", "requests", L("route", "/y")); other == c {
		t.Error("different labels shared a series")
	}

	g := r.Gauge("inflight", "in flight")
	g.Add(3)
	g.Dec()
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Errorf("gauge = %d, want -7", got)
	}

	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-55.55) > 1e-9 {
		t.Errorf("histogram sum = %g, want 55.55", h.Sum())
	}
}

func TestKindMismatchReturnsDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	g := r.Gauge("m", "")
	g.Set(9) // must not panic; detached instrument
	h := r.Histogram("m", "", nil)
	h.Observe(1)
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "# TYPE m ") != 1 {
		t.Errorf("family registered more than once:\n%s", out.String())
	}
}

func TestWritePrometheusRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("answers_total", "crowd answers", L("kind", "concrete")).Add(7)
	r.Counter("answers_total", "crowd answers", L("kind", "specialization")).Add(2)
	r.Gauge("inflight", "questions in flight").Set(3)
	h := r.Histogram("latency_seconds", "answer latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE answers_total counter",
		"# HELP answers_total crowd answers",
		"# TYPE inflight gauge",
		"# TYPE latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	cases := map[string]float64{
		`answers_total{kind="concrete"}`:       7,
		`answers_total{kind="specialization"}`: 2,
		`inflight`:                             3,
		`latency_seconds_bucket{le="0.1"}`:     1,
		`latency_seconds_bucket{le="1"}`:       2,
		`latency_seconds_bucket{le="+Inf"}`:    3,
		`latency_seconds_count`:                3,
	}
	for key, want := range cases {
		if got, ok := byKey[key]; !ok || got != want {
			t.Errorf("sample %s = %g (present=%v), want %g", key, got, ok, want)
		}
	}
	if got := byKey[`latency_seconds_sum`]; math.Abs(got-2.55) > 1e-9 {
		t.Errorf("latency sum = %g, want 2.55", got)
	}
	// Snapshot agrees with the exposition on scalar series.
	snap := r.Snapshot()
	if snap[`answers_total{kind="concrete"}`] != 7 || snap[`inflight`] != 3 {
		t.Errorf("snapshot disagrees: %v", snap)
	}
}

func TestNameSanitization(t *testing.T) {
	cases := map[string]string{
		"ok_name":     "ok_name",
		"with-dash":   "with_dash",
		"9leads":      "_leads",
		"sp ace":      "sp_ace",
		"":            "_",
		"ns:sub_name": "ns:sub_name",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeLabelName("a:b"); got != "a_b" {
		t.Errorf("sanitizeLabelName(a:b) = %q, want a_b", got)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		`plain`:        `plain`,
		`back\slash`:   `back\\slash`,
		`"quoted"`:     `\"quoted\"`,
		"line\nbreak":  `line\nbreak`,
		"\\\"\n":       `\\\"\n`,
		`already\\esc`: `already\\\\esc`,
	}
	for in, want := range cases {
		got := EscapeLabelValue(in)
		if got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
		if back := UnescapeLabelValue(got); back != in {
			t.Errorf("round trip of %q: got %q", in, back)
		}
	}
}

func TestMemTracer(t *testing.T) {
	var tr MemTracer
	end := tr.Begin("question", A("id", "7"), A("phase", "blocked"))
	if got := tr.Len(); got != 1 {
		t.Fatalf("spans = %d, want 1", got)
	}
	if open := tr.Spans()[0]; !open.End.IsZero() || open.Duration() != 0 {
		t.Error("span ended before end func was called")
	}
	end()
	end() // idempotent
	s := tr.Spans()[0]
	if s.Name != "question" || s.Attr("id") != "7" || s.Attr("phase") != "blocked" {
		t.Errorf("span = %+v", s)
	}
	if s.End.Before(s.Start) || s.Attr("missing") != "" {
		t.Errorf("span times/attrs wrong: %+v", s)
	}
	// Nil-tracer Begin is a cheap no-op.
	Begin(nil, "x", A("k", "v"))()
	done := Begin(&tr, "timed")
	time.Sleep(time.Millisecond)
	done()
	if d := tr.Spans()[1].Duration(); d <= 0 {
		t.Errorf("duration = %v, want > 0", d)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"novalue",
		`name{k="v" 3`,
		`name{k=v} 3`,
		`name{k="v"} notanumber`,
		`{k="v"} 3`,
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
}
