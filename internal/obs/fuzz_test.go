package obs

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzLabelEscaping feeds arbitrary label values and metric/label names
// through registration, exposition, and the parser, checking the
// properties that make /metrics scrape-safe: escaping round-trips, the
// escaped form never leaks a raw newline or quote into a sample line, and
// the full exposition re-parses to the original value.
func FuzzLabelEscaping(f *testing.F) {
	f.Add("plain", "route", "/api/question")
	f.Add("m", "k", `back\slash`)
	f.Add("m", "k", `"quoted"`)
	f.Add("m", "k", "multi\nline\n")
	f.Add("m", "k", `trailing\`)
	f.Add("m-dash 9", "label:colon", "\\\"\n\\n")
	f.Add("", "", "")
	f.Add("m", "k", "ünïcode   and \x00 bytes")
	f.Fuzz(func(t *testing.T, name, labelKey, labelValue string) {
		if !utf8.ValidString(labelValue) || strings.ContainsRune(labelValue, '\r') {
			// The exposition format is UTF-8 text; the engine only ever
			// labels with interned vocabulary names, so non-UTF-8 and bare
			// CR inputs are out of scope for the round-trip property.
			t.Skip()
		}
		escaped := EscapeLabelValue(labelValue)
		if strings.ContainsAny(escaped, "\n") {
			t.Fatalf("escaped value contains raw newline: %q", escaped)
		}
		for i := 0; i < len(escaped); i++ {
			if escaped[i] != '"' {
				continue
			}
			// Every quote must be preceded by an odd run of backslashes.
			run := 0
			for j := i - 1; j >= 0 && escaped[j] == '\\'; j-- {
				run++
			}
			if run%2 == 0 {
				t.Fatalf("unescaped quote in %q at %d", escaped, i)
			}
		}
		if got := UnescapeLabelValue(escaped); got != labelValue {
			t.Fatalf("unescape(escape(%q)) = %q", labelValue, got)
		}

		r := NewRegistry()
		r.Counter(name, "fuzzed", L(labelKey, labelValue)).Add(3)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		samples, err := ParseText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("exposition unparseable: %v\n%s", err, b.String())
		}
		if len(samples) != 1 {
			t.Fatalf("samples = %d, want 1:\n%s", len(samples), b.String())
		}
		s := samples[0]
		if s.Value != 3 {
			t.Fatalf("value = %g, want 3", s.Value)
		}
		if s.Name != sanitizeName(name) {
			t.Fatalf("name = %q, want %q", s.Name, sanitizeName(name))
		}
		if len(s.Labels) != 1 || s.Labels[0].Value != labelValue {
			t.Fatalf("labels = %+v, want value %q", s.Labels, labelValue)
		}
	})
}
