package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentExactTotals hammers one registry from 32 goroutines
// — concurrently registering, incrementing, and exposing — and asserts the
// final totals are exact: no increment may be lost to a race. `make check`
// runs this under -race, which is what actually exercises the atomics.
func TestRegistryConcurrentExactTotals(t *testing.T) {
	const (
		goroutines = 32
		perG       = 2000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			// Every goroutine looks its instruments up by name each
			// iteration, so registration races are exercised too; two label
			// variants interleave to contend on the family map.
			for i := 0; i < perG; i++ {
				kind := "even"
				if i%2 == 1 {
					kind = "odd"
				}
				r.Counter("hammer_total", "hammered counter", L("kind", kind)).Inc()
				r.Gauge("hammer_gauge", "hammered gauge").Inc()
				r.Histogram("hammer_seconds", "hammered histogram", []float64{0.5, 1}).
					Observe(float64(i%3) * 0.5)
				if i%500 == 0 {
					// Expose concurrently with the writers; output just has
					// to stay parseable, values are racing.
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Errorf("goroutine %d: expose: %v", g, err)
						return
					}
					if _, err := ParseText(strings.NewReader(b.String())); err != nil {
						t.Errorf("goroutine %d: mid-race exposition unparseable: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	total := goroutines * perG
	even := r.Counter("hammer_total", "", L("kind", "even")).Value()
	odd := r.Counter("hammer_total", "", L("kind", "odd")).Value()
	if int(even) != total/2 || int(odd) != total/2 {
		t.Errorf("counters = %d even + %d odd, want %d each", even, odd, total/2)
	}
	if got := r.Gauge("hammer_gauge", "").Value(); int(got) != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	h := r.Histogram("hammer_seconds", "", nil)
	if int(h.Count()) != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	// Each goroutine observes 0, 0.5, 1 cyclically: perG/3 full cycles
	// leave perG%3 == 2 extras (0 and 0.5) per goroutine.
	wantSum := float64(goroutines) * (float64(perG/3)*1.5 + 0.5)
	if h.Sum() != wantSum {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}

	// The settled exposition must carry the exact totals too.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if got := byKey[fmt.Sprintf("hammer_total{kind=%q}", "even")]; int(got) != total/2 {
		t.Errorf("exposed even counter = %g, want %d", got, total/2)
	}
	if got := byKey["hammer_seconds_count"]; int(got) != total {
		t.Errorf("exposed histogram count = %g, want %d", got, total)
	}
}

// TestTracerConcurrent begins and ends spans from many goroutines; the
// recorded span count must be exact and every span must close.
func TestTracerConcurrent(t *testing.T) {
	var tr MemTracer
	const goroutines, perG = 32, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				end := tr.Begin("span", A("g", fmt.Sprint(g)))
				end()
			}
		}(g)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != goroutines*perG {
		t.Fatalf("spans = %d, want %d", len(spans), goroutines*perG)
	}
	for _, s := range spans {
		if s.End.IsZero() {
			t.Fatal("unclosed span after all end funcs ran")
		}
	}
}
