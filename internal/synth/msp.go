package synth

import (
	"fmt"
	"math/rand"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// MSPDist selects the placement of planted MSPs in the DAG (§6.4).
type MSPDist int

// MSP distributions studied in the paper.
const (
	Uniform MSPDist = iota // uniform random, pairwise incomparable
	Nearby                 // biased towards MSPs within distance ≤ 4
	Far                    // biased towards MSPs at distance ≥ 6
)

func (d MSPDist) String() string {
	switch d {
	case Nearby:
		return "nearby"
	case Far:
		return "far"
	default:
		return "uniform"
	}
}

// MSPConfig controls MSP planting.
type MSPConfig struct {
	// Count is the number of MSPs to plant (the paper uses 1–10% of the
	// DAG nodes).
	Count int
	Dist  MSPDist
	// ValidOnly plants MSPs only among valid assignments.
	ValidOnly bool
	// MultCount of the planted MSPs get multiplicities (value sets of size
	// 2..MaxMultSize); requires a space with multiplicities enabled.
	MultCount   int
	MaxMultSize int
	Seed        int64
}

// PlantMSPs selects a pairwise-incomparable set of assignments to act as
// the true maximal significant patterns. The significance oracle derived
// from them (Oracle) then answers crowd questions accordingly.
func (s *Space) PlantMSPs(cfg MSPConfig) ([]assign.Assignment, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MaxMultSize < 2 {
		cfg.MaxMultSize = 2
	}
	sp := s.Sp

	// candidate draws one random multiplicity-1 assignment.
	candidate := func() assign.Assignment {
		if cfg.ValidOnly || len(sp.Vars) > 1 {
			row := sp.ValidBase[rng.Intn(len(sp.ValidBase))]
			return sp.Singleton(row...)
		}
		return sp.Singleton(s.Terms[rng.Intn(len(s.Terms))])
	}

	var msps []assign.Assignment
	incomparableWithAll := func(a assign.Assignment) bool {
		for _, m := range msps {
			if sp.Leq(a, m) || sp.Leq(m, a) {
				return false
			}
		}
		return true
	}
	distanceOK := func(a assign.Assignment) bool {
		if len(msps) == 0 {
			return true
		}
		switch cfg.Dist {
		case Nearby:
			for _, m := range msps {
				if d := s.AssignmentDistance(a, m); d >= 0 && d <= 4 {
					return true
				}
			}
			return false
		case Far:
			for _, m := range msps {
				if d := s.AssignmentDistance(a, m); d >= 0 && d < 6 {
					return false
				}
			}
			return true
		default:
			return true
		}
	}

	singles := cfg.Count - cfg.MultCount
	attempts := 0
	for len(msps) < singles && attempts < 200*cfg.Count+1000 {
		attempts++
		a := candidate()
		if !incomparableWithAll(a) || !distanceOK(a) {
			continue
		}
		msps = append(msps, a)
	}
	// Multiplicity MSPs: grow a candidate's first variable to a set of
	// 2..MaxMultSize incomparable values.
	for planted := 0; planted < cfg.MultCount && attempts < 400*cfg.Count+2000; {
		attempts++
		base := candidate()
		size := 2 + rng.Intn(cfg.MaxMultSize-1)
		set := append([]vocab.Term(nil), base.Vals[0]...)
		for tries := 0; len(set) < size && tries < 50; tries++ {
			t := candidate().Vals[0][0]
			ok := true
			for _, u := range set {
				if s.Voc.Comparable(t, u) {
					ok = false
					break
				}
			}
			if ok {
				set = append(set, t)
			}
		}
		if len(set) < 2 {
			continue
		}
		vals := make([][]vocab.Term, len(sp.Vars))
		vals[0] = set
		for i := 1; i < len(sp.Vars); i++ {
			vals[i] = base.Vals[i]
		}
		a := sp.NewAssignment(vals, nil)
		if !sp.InA(a) || !incomparableWithAll(a) {
			continue
		}
		msps = append(msps, a)
		planted++
	}
	if len(msps) == 0 {
		return nil, fmt.Errorf("synth: could not plant any MSP (constraints too tight)")
	}
	return msps, nil
}

// Oracle is the simulated single user of §6.4: its (virtual) history makes
// an assignment significant exactly when it precedes a planted MSP. Its
// specialization answers "provide the algorithm a significant successor of
// the current assignment", and its pruning clicks mark terms that appear in
// no planted MSP, with the configured probabilities.
type Oracle struct {
	Name  string
	Space *assign.Space
	Voc   *vocab.Vocabulary
	MSPs  []assign.Assignment

	SpecializeProb float64
	PruneProb      float64
	Rng            *rand.Rand

	insts []fact.Set
}

// NewOracle builds an oracle member over planted MSPs.
func NewOracle(name string, s *Space, msps []assign.Assignment) *Oracle {
	o := &Oracle{Name: name, Space: s.Sp, Voc: s.Voc, MSPs: msps}
	o.buildInsts()
	return o
}

// NewOracleForSpace builds an oracle for an arbitrary assignment space.
func NewOracleForSpace(name string, v *vocab.Vocabulary, sp *assign.Space, msps []assign.Assignment) *Oracle {
	o := &Oracle{Name: name, Space: sp, Voc: v, MSPs: msps}
	o.buildInsts()
	return o
}

func (o *Oracle) buildInsts() {
	o.insts = make([]fact.Set, len(o.MSPs))
	for i, m := range o.MSPs {
		o.insts[i] = o.Space.Instantiate(m)
	}
}

// ID implements crowd.Member.
func (o *Oracle) ID() string { return o.Name }

// significant reports whether the asked fact-set is implied by a planted
// MSP's fact-set (equivalently, the asked assignment precedes the MSP).
func (o *Oracle) significant(fs fact.Set) bool {
	for _, inst := range o.insts {
		if fact.SetLeq(o.Voc, fs, inst) {
			return true
		}
	}
	return false
}

// Concrete implements crowd.Member.
func (o *Oracle) Concrete(fs fact.Set) float64 {
	if o.significant(fs) {
		return 1
	}
	return 0
}

func (o *Oracle) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	if o.Rng == nil {
		return false
	}
	return o.Rng.Float64() < p
}

// ChooseSpecialization implements crowd.Member.
func (o *Oracle) ChooseSpecialization(candidates []fact.Set) crowd.SpecializeResponse {
	if !o.chance(o.SpecializeProb) {
		return crowd.DeclineSpecialization()
	}
	for i, c := range candidates {
		if o.significant(c) {
			return crowd.Choose(i, 1)
		}
	}
	return crowd.NoneOfThese()
}

// Irrelevant implements crowd.Member: a term is irrelevant when no planted
// MSP instantiation mentions it or a more specific term.
func (o *Oracle) Irrelevant(terms []vocab.Term) (vocab.Term, bool) {
	if !o.chance(o.PruneProb) {
		return vocab.None, false
	}
	for _, t := range terms {
		relevant := false
		for _, inst := range o.insts {
			for _, f := range inst {
				if o.Voc.Leq(t, f.S) || o.Voc.Leq(t, f.R) || o.Voc.Leq(t, f.O) {
					relevant = true
					break
				}
			}
			if relevant {
				break
			}
		}
		if !relevant {
			return t, true
		}
	}
	return vocab.None, false
}
