package synth

import (
	"fmt"
	"math"
	"math/rand"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/plan"
	"oassis/internal/vocab"
)

// DomainConfig describes one of the paper's three application domains
// (§6.3). The real experiments used a WordNet+YAGO+Foursquare ontology and
// 248 recruited crowd members; here the ontology is generated to the same
// assignment-DAG size and the members are simulated from planted habit
// patterns (see DESIGN.md, substitutions).
type DomainConfig struct {
	Name string
	// YTerms/XTerms are the exploration-domain sizes of the two mined
	// variables; their product is the DAG size without multiplicities.
	YTerms, XTerms int
	// YDepth/XDepth shape the term trees.
	YDepth, XDepth int
	// Members is the crowd size; Transactions the personal-history length.
	Members, Transactions int
	// Patterns is the number of planted habit patterns; their popularity
	// decays geometrically so that threshold sweeps change the MSP count.
	Patterns int
	Seed     int64
}

// Domain is a generated domain workload.
type Domain struct {
	Cfg     DomainConfig
	Voc     *vocab.Vocabulary
	Onto    *ontology.Ontology // subClassOf facts mirroring the term trees
	Sp      *assign.Space
	Members []crowd.Member
	// PlantedY/PlantedX are the leaf pairs of the planted habit patterns,
	// most popular first.
	PlantedY, PlantedX []vocab.Term

	// Generation parts retained for NewCrowd: the doAt relation and the
	// leaf pools member histories draw from.
	doAt             vocab.Term
	yLeaves, xLeaves []vocab.Term
}

// The paper's three domains with their reported DAG sizes (4773, 10512 and
// 2307 nodes without multiplicities, §6.3) and the 248-member crowd.
var (
	Travel = DomainConfig{
		Name: "travel", YTerms: 111, XTerms: 43, YDepth: 7, XDepth: 5,
		Members: 248, Transactions: 20, Patterns: 30, Seed: 101,
	}
	Culinary = DomainConfig{
		Name: "culinary", YTerms: 144, XTerms: 73, YDepth: 7, XDepth: 6,
		Members: 248, Transactions: 20, Patterns: 40, Seed: 202,
	}
	SelfTreatment = DomainConfig{
		Name: "self-treatment", YTerms: 769, XTerms: 3, YDepth: 7, XDepth: 1,
		Members: 248, Transactions: 20, Patterns: 20, Seed: 303,
	}
)

// growTree adds a tree of `count` terms under a fresh root, returning the
// root, all terms, and the leaves. Level sizes roughly triple (ontologies
// like the paper's WordNet+YAGO hierarchy have small per-node branching,
// which is what keeps the crowd question counts low); any excess terms go
// to the deepest level.
func growTree(v *vocab.Vocabulary, prefix string, count, depth int, rng *rand.Rand) (vocab.Term, []vocab.Term, []vocab.Term) {
	root := v.MustAddElement(prefix + "_root")
	if depth < 1 {
		depth = 1
	}
	var all []vocab.Term
	prev := []vocab.Term{root}
	remaining := count
	size := 3
	for d := 1; d <= depth && remaining > 0; d++ {
		if d == depth || size > remaining {
			size = remaining
		}
		level := make([]vocab.Term, 0, size)
		for i := 0; i < size; i++ {
			t := v.MustAddElement(fmt.Sprintf("%s_%d_%d", prefix, d, i))
			v.MustAddOrder(prev[rng.Intn(len(prev))], t)
			level = append(level, t)
			all = append(all, t)
		}
		remaining -= size
		prev = level
		size *= 3
	}
	return root, all, prev
}

// GenerateDomain builds the ontology-shaped vocabulary, the mining space
// for the query `$y+ doAt $x` and the simulated crowd.
func GenerateDomain(cfg DomainConfig) (*Domain, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := vocab.New()
	doAt := v.MustAddRelation("doAt")
	subClassOf := v.MustAddRelation("subClassOf")
	yRoot, yAll, yLeaves := growTree(v, cfg.Name+"_y", cfg.YTerms-1, cfg.YDepth, rng)
	xRoot, xAll, xLeaves := growTree(v, cfg.Name+"_x", cfg.XTerms-1, cfg.XDepth, rng)
	// Mirror the order into an ontology document (subClassOf facts), so
	// the generated workload can be exported and reloaded.
	onto := ontology.New(v)
	for t := 0; t < v.Len(); t++ {
		term := vocab.Term(t)
		if v.KindOf(term) != vocab.Element {
			continue
		}
		for _, c := range v.Children(term) {
			if err := onto.Add(fact.Fact{S: c, R: subClassOf, O: term}); err != nil {
				return nil, err
			}
		}
	}
	if err := v.Freeze(); err != nil {
		return nil, err
	}
	if len(xLeaves) == 0 {
		xLeaves = []vocab.Term{xRoot}
	}

	q := &oassisql.Query{
		Select:  oassisql.SelectFactSets,
		Support: 0.2,
		Satisfying: []oassisql.Pattern{{
			S:     oassisql.Var("y"),
			SMult: oassisql.MultPlus,
			R:     oassisql.TermAtom("doAt"),
			O:     oassisql.Var("x"),
			OMult: oassisql.MultOne,
		}},
	}
	// Valid assignments: every class-or-instance pair below the roots, so
	// that the assignment DAG has exactly YTerms × XTerms nodes (the sizes
	// the paper reports per domain).
	var bindings []map[string]vocab.Term
	for _, y := range yAll {
		for _, x := range xAll {
			bindings = append(bindings, map[string]vocab.Term{"y": y, "x": x})
		}
	}
	anchors := map[string][]vocab.Term{"y": {yRoot}, "x": {xRoot}}
	sp, err := assign.NewSpace(v, q, bindings, anchors)
	if err != nil {
		return nil, err
	}

	// Plant habit patterns on leaf pairs with geometrically decaying
	// popularity, then synthesize member histories from them.
	d := &Domain{Cfg: cfg, Voc: v, Onto: onto, Sp: sp}
	used := map[[2]vocab.Term]bool{}
	for len(d.PlantedY) < cfg.Patterns {
		y := yLeaves[rng.Intn(len(yLeaves))]
		x := xLeaves[rng.Intn(len(xLeaves))]
		if used[[2]vocab.Term{y, x}] {
			continue
		}
		used[[2]vocab.Term{y, x}] = true
		d.PlantedY = append(d.PlantedY, y)
		d.PlantedX = append(d.PlantedX, x)
	}

	d.doAt = doAt
	d.yLeaves = yLeaves
	d.xLeaves = xLeaves
	d.Members = d.NewCrowd()
	return d, nil
}

// Plan compiles the generated workload into an immutable plan.Plan, so
// experiment grids share one compiled plan across cells: each cell
// materializes a private lattice with pl.NewSpace() and a private crowd
// with NewCrowd() instead of regenerating the whole domain. The support
// recorded in the plan is the base threshold; threshold-sweep cells
// override core.Config.Theta per run exactly as before.
func (d *Domain) Plan(support float64) (*plan.Plan, error) {
	fp := plan.DomainFingerprint(d.Voc, d.Onto)
	return plan.FromSpace("synth:"+d.Cfg.Name, support, false, fp, d.Sp)
}

// NewCrowd synthesizes a fresh simulated crowd for the domain. Every call
// returns members with the same histories and the same per-member RNG
// seeds (cfg.Seed + member index, independent of the domain generation
// stream), so plan-reusing experiment cells can pair one shared compiled
// plan with a private crowd and still be bit-identical to cells that
// regenerate the whole domain.
func (d *Domain) NewCrowd() []crowd.Member {
	cfg := d.Cfg
	members := make([]crowd.Member, 0, cfg.Members)
	for m := 0; m < cfg.Members; m++ {
		db := crowd.NewPersonalDB(d.Voc)
		mRng := rand.New(rand.NewSource(cfg.Seed + int64(m)*7919 + 1))
		// Each occasion revolves around one habit pattern, picked with
		// geometrically decaying popularity and per-member jitter;
		// occasionally a second pattern co-occurs (which is what produces
		// the multiplicity MSPs — real habits are mostly exclusive per
		// occasion, so pattern combinations are rarer than the patterns
		// themselves).
		pickPattern := func() int {
			for {
				k := mRng.Intn(len(d.PlantedY))
				pop := 0.9 * math.Pow(0.7, float64(k)) * (0.5 + mRng.Float64())
				if mRng.Float64() < pop {
					return k
				}
			}
		}
		for t := 0; t < cfg.Transactions; t++ {
			var tx fact.Set
			if mRng.Float64() < 0.85 {
				k := pickPattern()
				tx = append(tx, fact.Fact{S: d.PlantedY[k], R: d.doAt, O: d.PlantedX[k]})
				// Habits co-occur in correlated pairs (pattern 2i with
				// 2i+1, like biking with renting bikes): this is what
				// produces multiplicity MSPs, as in the paper's crowd
				// (up to 25 per query). Unrelated habits co-occur rarely.
				if partner := k ^ 1; partner < len(d.PlantedY) && mRng.Float64() < 0.6 {
					tx = append(tx, fact.Fact{S: d.PlantedY[partner], R: d.doAt, O: d.PlantedX[partner]})
				} else if mRng.Float64() < 0.08 {
					k2 := pickPattern()
					tx = append(tx, fact.Fact{S: d.PlantedY[k2], R: d.doAt, O: d.PlantedX[k2]})
				}
			} else {
				// A noise occasion: a random rare activity.
				tx = append(tx, fact.Fact{
					S: d.yLeaves[mRng.Intn(len(d.yLeaves))],
					R: d.doAt,
					O: d.xLeaves[mRng.Intn(len(d.xLeaves))],
				})
			}
			db.Add(tx.Canon())
		}
		members = append(members, &crowd.SimMember{
			Name:           fmt.Sprintf("%s-m%03d", cfg.Name, m),
			DB:             db,
			Disc:           crowd.FiveLevel,
			SpecializeProb: 0.5, // members accept half the offered specializations
			PruneProb:      0.3,
			Theta:          0.2,
			Rng:            mRng,
		})
	}
	return members
}

// DAGSize reports the domain's assignment-DAG size without multiplicities
// (|domain(y)| × |domain(x)|), the quantity the paper reports per domain.
func (d *Domain) DAGSize() int {
	return d.Sp.DomainSize(0) * d.Sp.DomainSize(1)
}
