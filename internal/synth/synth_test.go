package synth

import (
	"math/rand"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/vocab"
)

func TestGenerateSpaceShape(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 50, Depth: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() < 50 {
		t.Errorf("NodeCount = %d, want ≥ width", s.NodeCount())
	}
	// Depth: some term must sit 4 levels below the root.
	maxDepth := 0
	for _, term := range s.Terms {
		if d := s.Voc.Depth(term); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 4 {
		t.Errorf("max depth = %d, want 4", maxDepth)
	}
	// All terms are anchored under the root.
	for _, term := range s.Terms {
		if !s.Voc.Leq(s.Root, term) {
			t.Fatalf("term %s not under root", s.Voc.Name(term))
		}
	}
	if _, err := GenerateSpace(DAGConfig{Width: 0, Depth: 3}); err == nil {
		t.Error("zero width accepted")
	}
}

func TestGenerateSpaceDeterministic(t *testing.T) {
	a, err := GenerateSpace(DAGConfig{Width: 40, Depth: 5, Seed: 9, ExtraParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSpace(DAGConfig{Width: 40, Depth: 5, Seed: 9, ExtraParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Voc.Len() != b.Voc.Len() || a.NodeCount() != b.NodeCount() {
		t.Error("generation not deterministic")
	}
}

func TestValidLeavesOnly(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 30, Depth: 4, ValidLeavesOnly: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Valid assignments are fewer than all terms.
	if len(s.Sp.ValidBase) >= len(s.Terms) {
		t.Errorf("valid %d ≥ terms %d", len(s.Sp.ValidBase), len(s.Terms))
	}
	// The DAG spans the ancestor closure of the leaves: more nodes than
	// valid assignments, at most the whole tree plus the root.
	if s.NodeCount() <= len(s.Sp.ValidBase) || s.NodeCount() > len(s.Terms)+1 {
		t.Errorf("NodeCount = %d, valid = %d, terms = %d",
			s.NodeCount(), len(s.Sp.ValidBase), len(s.Terms))
	}
}

func TestPlantMSPsIncomparable(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 100, Depth: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []MSPDist{Uniform, Nearby, Far} {
		msps, err := s.PlantMSPs(MSPConfig{Count: 8, Dist: dist, Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if len(msps) == 0 {
			t.Fatalf("%v: no MSPs", dist)
		}
		for i := range msps {
			for j := i + 1; j < len(msps); j++ {
				if s.Sp.Leq(msps[i], msps[j]) || s.Sp.Leq(msps[j], msps[i]) {
					t.Errorf("%v: planted MSPs %d and %d comparable", dist, i, j)
				}
			}
		}
	}
}

func TestPlantMSPsWithMultiplicities(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 80, Depth: 5, Multiplicities: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	msps, err := s.PlantMSPs(MSPConfig{Count: 6, MultCount: 2, MaxMultSize: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	multFound := 0
	for _, m := range msps {
		if len(m.Vals[0]) > 1 {
			multFound++
		}
	}
	if multFound == 0 {
		t.Error("no multiplicity MSPs planted")
	}
}

func TestOracleAnswers(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 60, Depth: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	msps, err := s.PlantMSPs(MSPConfig{Count: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle("oracle", s, msps)
	// The MSP itself and its generalizations answer 1.
	inst := s.Sp.Instantiate(msps[0])
	if o.Concrete(inst) != 1 {
		t.Error("MSP instantiation not significant")
	}
	top := s.Sp.Instantiate(s.Sp.Singleton(s.Root))
	if o.Concrete(top) != 1 {
		t.Error("root generalization not significant")
	}
	// A strict successor of an MSP answers 0 (MSP is maximal).
	for _, succ := range s.Sp.Successors(msps[0]) {
		if o.Concrete(s.Sp.Instantiate(succ)) != 0 {
			t.Errorf("successor of MSP answered significant: %s", s.Sp.Format(succ))
		}
	}
}

func TestVerticalRecoversPlantedMSPs(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 80, Depth: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	msps, err := s.PlantMSPs(MSPConfig{Count: 5, ValidOnly: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle("oracle", s, msps)
	res := core.Run(core.Config{
		Space:   s.Sp,
		Theta:   0.5,
		Members: []crowd.Member{o},
	})
	want := map[string]bool{}
	for _, m := range msps {
		want[m.Key()] = true
	}
	if len(res.MSPs) != len(msps) {
		t.Fatalf("recovered %d MSPs, want %d", len(res.MSPs), len(msps))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("unexpected MSP %s", s.Sp.Format(m))
		}
	}
}

func TestVerticalRecoversMultiplicityMSPs(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 60, Depth: 4, Multiplicities: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	msps, err := s.PlantMSPs(MSPConfig{Count: 4, MultCount: 2, MaxMultSize: 3, ValidOnly: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle("oracle", s, msps)
	res := core.Run(core.Config{
		Space:   s.Sp,
		Theta:   0.5,
		Members: []crowd.Member{o},
	})
	want := map[string]bool{}
	for _, m := range msps {
		want[m.Key()] = true
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("unexpected MSP %s", s.Sp.Format(m))
		}
		delete(want, m.Key())
	}
	for k := range want {
		t.Errorf("planted MSP not recovered: %s", k)
	}
}

func TestOracleSpecializationAndPruning(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 60, Depth: 4, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	msps, err := s.PlantMSPs(MSPConfig{Count: 2, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle("o", s, msps)
	o.SpecializeProb = 1
	o.PruneProb = 1
	o.Rng = rand.New(rand.NewSource(17))

	top := s.Sp.Singleton(s.Root)
	succs := s.Sp.Successors(top)
	sets := make([]fact.Set, len(succs))
	for i, su := range succs {
		sets[i] = s.Sp.Instantiate(su)
	}
	r := o.ChooseSpecialization(sets)
	if r.Declined {
		t.Fatal("oracle declined at SpecializeProb 1")
	}
	if r.Chosen {
		if r.Support != 1 || o.Concrete(sets[r.Choice]) != 1 {
			t.Error("oracle picked an insignificant specialization")
		}
	}
	// Pruning: some term outside every MSP cone must be prunable, and terms
	// inside a cone must not be.
	pruned := 0
	for _, term := range s.Terms {
		if _, ok := o.Irrelevant([]vocab.Term{term}); ok {
			pruned++
		}
	}
	if pruned == 0 {
		t.Error("nothing prunable despite PruneProb 1")
	}
	for _, m := range msps {
		if _, ok := o.Irrelevant(m.Vals[0]); ok {
			t.Error("MSP value marked irrelevant")
		}
	}
}

func TestDomainsMatchPaperDAGSizes(t *testing.T) {
	for _, cfg := range []DomainConfig{Travel, Culinary, SelfTreatment} {
		cfg.Members = 6 // keep the test fast; size is independent of crowd
		d, err := GenerateDomain(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		want := map[string]int{"travel": 4773, "culinary": 10512, "self-treatment": 2307}[cfg.Name]
		if got := d.DAGSize(); got != want {
			t.Errorf("%s DAG size = %d, want %d", cfg.Name, got, want)
		}
		if len(d.Members) != 6 {
			t.Errorf("%s members = %d", cfg.Name, len(d.Members))
		}
	}
}

func TestDomainMiningFindsPopularPatterns(t *testing.T) {
	cfg := SelfTreatment
	cfg.Members = 12
	cfg.Patterns = 8
	d, err := GenerateDomain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(core.Config{
		Space:   d.Sp,
		Theta:   0.2,
		Members: d.Members,
		Agg:     aggregate.NewFixedSample(5),
	})
	if len(res.MSPs) == 0 {
		t.Fatal("no MSPs mined from domain crowd")
	}
	// The most popular planted pattern must be significant (appear at or
	// below some MSP).
	topPattern := d.Sp.Singleton(d.PlantedY[0], d.PlantedX[0])
	covered := false
	for _, m := range res.MSPs {
		if d.Sp.Leq(topPattern, m) {
			covered = true
			break
		}
	}
	if !covered {
		t.Error("most popular planted pattern not significant")
	}
}

func TestDistance(t *testing.T) {
	s, err := GenerateSpace(DAGConfig{Width: 20, Depth: 3, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if s.Distance(s.Root, s.Root) != 0 {
		t.Error("self distance ≠ 0")
	}
	child := s.Voc.Children(s.Root)[0]
	if s.Distance(s.Root, child) != 1 {
		t.Error("parent-child distance ≠ 1")
	}
	if s.Distance(child, s.Root) != 1 {
		t.Error("distance not symmetric")
	}
}
