// Package synth generates the synthetic workloads of the paper's
// experimental evaluation (§6.3–6.4): assignment DAGs of configurable width
// and depth, planted maximal significant patterns (uniform / nearby / far
// distributions, valid-only or anywhere, with or without multiplicities),
// oracle crowd members that answer according to the planted MSPs, and the
// three application-domain workloads (travel, culinary, self-treatment)
// scaled to the DAG sizes the paper reports for its real-crowd experiments.
package synth

import (
	"fmt"
	"math/rand"

	"oassis/internal/assign"
	"oassis/internal/oassisql"
	"oassis/internal/vocab"
)

// DAGConfig shapes a synthetic mining space whose assignment DAG mirrors
// the paper's synthetic experiments: a term tree of the given width and
// depth under one anchor root for the mined variable $y, optionally a
// second tree for a place-like variable $x (the paper's Fig 4f DAG is
// "similar to the one generated in our crowd experiments with the travel
// query", which has two variables), mined through `$y(+) rel obj` or
// `$y(+) rel $x`.
type DAGConfig struct {
	// Width is the maximum number of terms per tree level of the $y tree
	// (the paper varies 500–2000); Depth is the number of levels (4–7).
	Width, Depth int
	// XWidth/XDepth, when positive, add a second mined variable $x with
	// its own term tree.
	XWidth, XDepth int
	// ExtraParentProb turns the trees into DAGs by giving nodes a second
	// parent with this probability.
	ExtraParentProb float64
	// ValidLeavesOnly restricts the valid assignments to tree leaves (like
	// instance-level assignments in the travel query); otherwise every
	// term below the roots is valid.
	ValidLeavesOnly bool
	// Multiplicities enables the + multiplicity on $y.
	Multiplicities bool
	Seed           int64
}

// Space is a generated synthetic mining space.
type Space struct {
	Voc  *vocab.Vocabulary
	Sp   *assign.Space
	Root vocab.Term // root of the $y tree
	// Terms are the $y tree terms; XTerms the $x tree terms (nil without a
	// second variable).
	Terms  []vocab.Term
	XRoot  vocab.Term
	XTerms []vocab.Term

	leaves, xLeaves []vocab.Term
}

// GenerateSpace builds the synthetic space.
func GenerateSpace(cfg DAGConfig) (*Space, error) {
	if cfg.Width < 1 || cfg.Depth < 1 {
		return nil, fmt.Errorf("synth: width and depth must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := vocab.New()
	rel := v.MustAddRelation("rel")

	s := &Space{Voc: v}
	s.Root, s.Terms, s.leaves = genTree(v, "t", cfg.Width, cfg.Depth, cfg.ExtraParentProb, rng)
	twoVars := cfg.XWidth > 0 && cfg.XDepth > 0
	var obj vocab.Term
	if twoVars {
		s.XRoot, s.XTerms, s.xLeaves = genTree(v, "x", cfg.XWidth, cfg.XDepth, cfg.ExtraParentProb, rng)
	} else {
		obj = v.MustAddElement("obj")
	}
	if err := v.Freeze(); err != nil {
		return nil, err
	}

	q := &oassisql.Query{Select: oassisql.SelectFactSets, Support: 0.5}
	pat := oassisql.Pattern{
		S:     oassisql.Var("y"),
		SMult: multOf(cfg.Multiplicities),
		R:     oassisql.TermAtom("rel"),
		OMult: oassisql.MultOne,
	}
	anchors := map[string][]vocab.Term{"y": {s.Root}}
	yVals := s.Terms
	if cfg.ValidLeavesOnly {
		yVals = s.leaves
	}
	var bindings []map[string]vocab.Term
	if twoVars {
		pat.O = oassisql.Var("x")
		anchors["x"] = []vocab.Term{s.XRoot}
		xVals := s.XTerms
		if cfg.ValidLeavesOnly {
			xVals = s.xLeaves
		}
		for _, y := range yVals {
			for _, x := range xVals {
				bindings = append(bindings, map[string]vocab.Term{"y": y, "x": x})
			}
		}
	} else {
		pat.O = oassisql.TermAtom("obj")
		for _, y := range yVals {
			bindings = append(bindings, map[string]vocab.Term{"y": y})
		}
	}
	q.Satisfying = []oassisql.Pattern{pat}
	sp, err := assign.NewSpace(v, q, bindings, anchors)
	if err != nil {
		return nil, err
	}
	_ = rel
	_ = obj
	s.Sp = sp
	return s, nil
}

// genTree builds one term tree; level sizes ramp up geometrically until the
// width is reached.
func genTree(v *vocab.Vocabulary, prefix string, width, depth int, extraParentProb float64,
	rng *rand.Rand) (root vocab.Term, all, leaves []vocab.Term) {
	root = v.MustAddElement(prefix + "root")
	prev := []vocab.Term{root}
	for d := 1; d <= depth; d++ {
		size := width
		for i := d; i < depth; i++ {
			size = (size + 2) / 3
		}
		if size < 1 {
			size = 1
		}
		level := make([]vocab.Term, size)
		for i := range level {
			t := v.MustAddElement(fmt.Sprintf("%s%d_%d", prefix, d, i))
			level[i] = t
			parent := prev[rng.Intn(len(prev))]
			v.MustAddOrder(parent, t)
			if extraParentProb > 0 && rng.Float64() < extraParentProb && len(prev) > 1 {
				other := prev[rng.Intn(len(prev))]
				if other != parent {
					v.MustAddOrder(other, t)
				}
			}
			all = append(all, t)
		}
		if d == depth {
			leaves = level
		}
		prev = level
	}
	return root, all, leaves
}

func multOf(multiplicities bool) oassisql.Mult {
	if multiplicities {
		return oassisql.MultPlus
	}
	return oassisql.MultOne
}

// NodeCount reports the number of assignments without multiplicities (the
// DAG size the paper reports): the product of the variables' exploration
// domains.
func (s *Space) NodeCount() int {
	n := s.Sp.DomainSize(0)
	if len(s.Sp.Vars) > 1 {
		n *= s.Sp.DomainSize(1)
	}
	return n
}

// Distance computes the undirected Hasse-graph distance between two terms
// (used by the nearby/far MSP distributions). It runs a BFS over parent and
// child edges; unreachable terms (different trees) have distance -1.
func (s *Space) Distance(a, b vocab.Term) int {
	if a == b {
		return 0
	}
	seen := map[vocab.Term]int{a: 0}
	queue := []vocab.Term{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := seen[cur]
		var adj []vocab.Term
		adj = append(adj, s.Voc.Parents(cur)...)
		adj = append(adj, s.Voc.Children(cur)...)
		for _, n := range adj {
			if _, ok := seen[n]; ok {
				continue
			}
			if n == b {
				return d + 1
			}
			seen[n] = d + 1
			queue = append(queue, n)
		}
	}
	return -1
}

// AssignmentDistance sums the per-variable term distances between the first
// values of two assignments (the node distance used by the nearby/far MSP
// placement).
func (s *Space) AssignmentDistance(a, b assign.Assignment) int {
	total := 0
	for i := range a.Vals {
		if len(a.Vals[i]) == 0 || len(b.Vals[i]) == 0 {
			continue
		}
		d := s.Distance(a.Vals[i][0], b.Vals[i][0])
		if d < 0 {
			return -1
		}
		total += d
	}
	return total
}
