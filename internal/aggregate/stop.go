// Streaming stop-condition estimators: pluggable "when to stop asking"
// policies the engine consults between questions. The paper's engine asks
// until every generated node is classified, which over-asks on open-world
// enumeration queries and trusts every member equally. A StopPolicy watches
// the answer stream and can end the run early (SpeciesStop, a Chao92-style
// completeness estimator in the spirit of Trushkowsky et al., "Getting It
// All from the Crowd") or reweight it (AccuracyWeightedStop, per-member
// accuracy rates against the running consensus in the spirit of Zhang et
// al.'s accuracy-rate crowdsourcing). ThresholdStop is the inert default:
// attaching it is bit-identical to attaching nothing.
package aggregate

import (
	"fmt"
	"sort"
	"sync"
)

// Registry names of the built-in stop policies. The name is part of the
// plan IR (and hence the plan fingerprint): runs with different stop
// policies are different plans.
const (
	StopThreshold = "threshold"
	StopSpecies   = "species"
	StopAccuracy  = "accuracy"
)

// StopPolicy decides when the engine should stop asking questions. The
// engine feeds it two event streams — every recorded answer and every
// member's maximal affirmed pattern (the end of a descent chain) — and
// polls ShouldStop on the question hot path. Implementations must be safe
// for concurrent use and monotone: once ShouldStop reports true it must
// keep reporting true (the fuzzer enforces non-revival).
type StopPolicy interface {
	// Name returns the registry name of the policy.
	Name() string
	// ObserveAnswer sees every answer recorded into the aggregator, in
	// recording order: the question key, the answering member and the
	// reported support.
	ObserveAnswer(questionKey, memberID string, support float64)
	// ObserveDiscovery sees the maximal pattern a member's descent chain
	// ended at — the open-world enumeration stream the species estimator
	// tracks.
	ObserveDiscovery(patternKey, memberID string)
	// ShouldStop reports whether the run should stop asking. It latches:
	// once true, always true.
	ShouldStop() bool
	// Estimate is the policy's current confidence statistic in [0, 1]:
	// estimated answer-set completeness for SpeciesStop, mean member
	// accuracy for AccuracyWeightedStop, 0 for ThresholdStop.
	Estimate() float64
}

// MemberWeighter is the optional StopPolicy extension for policies that
// grade crowd members: per-member aggregation weights and a spammer flag.
// The engine excludes flagged members from further questions, and the
// Weighted aggregator discounts their recorded answers.
type MemberWeighter interface {
	// Weight returns the member's aggregation weight (0 when flagged).
	Weight(memberID string) float64
	// Flagged reports whether the member fell below the spammer floor.
	Flagged(memberID string) bool
}

// StopNames lists the registry names, sorted, for error messages.
func StopNames() []string {
	return []string{StopAccuracy, StopSpecies, StopThreshold}
}

// StopByName instantiates a stop policy with default parameters. The
// empty name means ThresholdStop, mirroring plan.PolicyByName.
func StopByName(name string) (StopPolicy, error) {
	switch name {
	case StopThreshold, "":
		return ThresholdStop{}, nil
	case StopSpecies:
		return NewSpeciesStop(0, 0), nil
	case StopAccuracy:
		return NewAccuracyWeightedStop(0, 0, 0), nil
	}
	return nil, fmt.Errorf("aggregate: unknown stop policy %q", name)
}

// ThresholdStop is the paper's behavior, extracted as the default policy:
// keep asking until the significance thresholds settle on every generated
// node. It observes nothing and never stops, so a run with ThresholdStop
// attached is bit-identical to a run with no policy at all.
type ThresholdStop struct{}

// Name implements StopPolicy.
func (ThresholdStop) Name() string { return StopThreshold }

// ObserveAnswer implements StopPolicy (no-op).
func (ThresholdStop) ObserveAnswer(string, string, float64) {}

// ObserveDiscovery implements StopPolicy (no-op).
func (ThresholdStop) ObserveDiscovery(string, string) {}

// ShouldStop implements StopPolicy: the threshold policy never stops
// early.
func (ThresholdStop) ShouldStop() bool { return false }

// Estimate implements StopPolicy.
func (ThresholdStop) Estimate() float64 { return 0 }

// speciesRareCutoff is the abundance cutoff of the Chao92/ACE estimator:
// species sighted more than this often count as fully observed, and the
// coverage and skew statistics are computed over the rare group only —
// which is what keeps the estimator honest under Zipf-like abundance
// (the naive all-species CV correction explodes on heavy heads).
const speciesRareCutoff = 10

// SpeciesStop estimates how complete the crowd's answer set is with the
// Chao92 (ACE) species-richness estimator and stops once estimated
// coverage crosses Target. Each (member, pattern) discovery is one
// observation of one "species"; the tracker is fully streaming — per
// observation it updates, in O(1), the rare-group frequency-of-
// frequencies f_1..f_τ (τ = speciesRareCutoff), the rare token count
// n_rare = Σ_{i≤τ} i·f_i, sumII = Σ_{i≤τ} i(i−1)·f_i, and the rare and
// abundant species counts:
//
//	rare coverage   Ĉ  = 1 − f1/n_rare                  (Good–Turing)
//	skew            γ̂² = max(0, (S_rare/Ĉ)·sumII/(n_rare(n_rare−1)) − 1)
//	richness        Ŝ  = S_abund + S_rare/Ĉ + (f1/Ĉ)·γ̂²
//	completeness       = (S_rare + S_abund)/Ŝ
//
// Repeat sightings by the same member are deduplicated, so colluding or
// chatty members cannot inflate coverage.
type SpeciesStop struct {
	// Target is the completeness level that ends the run, in (0, 1].
	Target float64
	// MinObservations is the number of discovery observations required
	// before the estimate is trusted to stop the run.
	MinObservations int

	mu      sync.Mutex
	counts  map[string]int      // species -> members who reported it
	seen    map[string]struct{} // member\x00species dedup
	n       int                 // total observations
	f       [speciesRareCutoff + 1]int
	nRare   int     // Σ_{i≤τ} i f_i
	sumII   float64 // Σ_{i≤τ} i(i-1) f_i
	sRare   int     // species with count ≤ τ
	sAbund  int     // species with count > τ
	stopped bool
}

// NewSpeciesStop returns a SpeciesStop with the given completeness target
// and minimum observation count; zero values select the defaults (0.9
// target, 25 observations).
func NewSpeciesStop(target float64, minObservations int) *SpeciesStop {
	if target <= 0 || target > 1 {
		target = 0.9
	}
	if minObservations <= 0 {
		minObservations = 25
	}
	return &SpeciesStop{
		Target:          target,
		MinObservations: minObservations,
		counts:          make(map[string]int),
		seen:            make(map[string]struct{}),
	}
}

// Name implements StopPolicy.
func (s *SpeciesStop) Name() string { return StopSpecies }

// ObserveAnswer implements StopPolicy: the species estimator only
// consumes the discovery stream.
func (s *SpeciesStop) ObserveAnswer(string, string, float64) {}

// ObserveDiscovery implements StopPolicy: one observation of species
// patternKey by memberID, deduplicated per (member, species).
func (s *SpeciesStop) ObserveDiscovery(patternKey, memberID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dk := memberID + "\x00" + patternKey
	if _, dup := s.seen[dk]; dup {
		return
	}
	s.seen[dk] = struct{}{}
	k := s.counts[patternKey]
	s.counts[patternKey] = k + 1
	s.n++
	// Maintain the rare-group summaries for the count transition k -> k+1.
	switch {
	case k == 0:
		s.sRare++
		s.f[1]++
		s.nRare++
	case k < speciesRareCutoff:
		s.f[k]--
		s.f[k+1]++
		s.nRare++
		s.sumII += float64(2 * k) // i(i-1) grows by 2(i-1) when i-1 -> i
	case k == speciesRareCutoff:
		// The species graduates out of the rare group: from here on it
		// counts as fully observed and stops influencing the coverage
		// and skew statistics.
		s.f[speciesRareCutoff]--
		s.sRare--
		s.sAbund++
		s.nRare -= speciesRareCutoff
		s.sumII -= float64(speciesRareCutoff * (speciesRareCutoff - 1))
	}
}

// Estimate implements StopPolicy: estimated completeness c/Ŝ, clamped to
// [0, 1].
func (s *SpeciesStop) Estimate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.estimateLocked()
}

func (s *SpeciesStop) estimateLocked() float64 {
	if s.n == 0 {
		return 0
	}
	c := float64(s.sRare + s.sAbund)
	if s.sRare == 0 {
		return 1 // every observed species abundant: the sample is saturated
	}
	nr := float64(s.nRare)
	f1 := float64(s.f[1])
	cov := 1 - f1/nr // Good–Turing coverage of the rare group
	if cov <= 0 {
		return 0 // every rare species a singleton: no completeness evidence
	}
	sHat := float64(s.sAbund) + float64(s.sRare)/cov
	if s.nRare > 1 {
		gamma2 := float64(s.sRare)/cov*s.sumII/(nr*(nr-1)) - 1
		if gamma2 < 0 {
			gamma2 = 0
		}
		sHat += f1 / cov * gamma2
	}
	if sHat < c {
		sHat = c
	}
	est := c / sHat
	if est > 1 {
		est = 1
	}
	return est
}

// ShouldStop implements StopPolicy: true once the estimate has crossed
// Target with at least MinObservations observations, latched thereafter.
func (s *SpeciesStop) ShouldStop() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return true
	}
	if s.n >= s.MinObservations && s.estimateLocked() >= s.Target {
		s.stopped = true
	}
	return s.stopped
}

// Observed returns the number of distinct species observed so far.
func (s *SpeciesStop) Observed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sRare + s.sAbund
}

// EstimatedRichness returns the current Chao92 richness estimate Ŝ (the
// observed count when no estimate is possible yet).
func (s *SpeciesStop) EstimatedRichness() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := float64(s.sRare + s.sAbund)
	if est := s.estimateLocked(); est > 0 {
		return c / est
	}
	return c
}

// AccuracyWeightedStop maintains per-member accuracy rates online: each
// recorded answer is compared against the running consensus (the mean of
// the answers recorded before it), a member agreeing within Tolerance
// scores a hit, and the Laplace-smoothed hit rate (hits+1)/(trials+2)
// becomes the member's aggregation weight. Members whose rate falls below
// Floor after MinAnswers trials are flagged as spammers: the engine stops
// asking them and the Weighted aggregator drops their recorded answers.
// The policy never ends the run — it reweights it.
type AccuracyWeightedStop struct {
	// Floor is the smoothed accuracy rate below which a member is
	// flagged, in (0, 1).
	Floor float64
	// MinAnswers is the number of consensus comparisons required before a
	// member can be flagged.
	MinAnswers int
	// Tolerance is how far from the consensus an answer may fall and
	// still count as agreement (one answer-scale step, 0.25, by default).
	Tolerance float64

	mu        sync.Mutex
	members   map[string]*memberAcc
	questions map[string]*qConsensus
}

type memberAcc struct {
	hits, trials int
	flagged      bool
}

type qConsensus struct {
	sum float64
	n   int
}

// NewAccuracyWeightedStop returns an AccuracyWeightedStop; zero values
// select the defaults (floor 0.4, 8 answers, tolerance 0.25).
func NewAccuracyWeightedStop(floor float64, minAnswers int, tolerance float64) *AccuracyWeightedStop {
	if floor <= 0 || floor >= 1 {
		floor = 0.4
	}
	if minAnswers <= 0 {
		minAnswers = 8
	}
	if tolerance <= 0 {
		tolerance = 0.25
	}
	return &AccuracyWeightedStop{
		Floor:      floor,
		MinAnswers: minAnswers,
		Tolerance:  tolerance,
		members:    make(map[string]*memberAcc),
		questions:  make(map[string]*qConsensus),
	}
}

// Name implements StopPolicy.
func (a *AccuracyWeightedStop) Name() string { return StopAccuracy }

// ObserveAnswer implements StopPolicy: grade the answer against the
// running consensus of earlier answers to the same question, then fold it
// into the consensus.
func (a *AccuracyWeightedStop) ObserveAnswer(questionKey, memberID string, support float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	q := a.questions[questionKey]
	if q == nil {
		q = &qConsensus{}
		a.questions[questionKey] = q
	}
	if q.n > 0 {
		m := a.members[memberID]
		if m == nil {
			m = &memberAcc{}
			a.members[memberID] = m
		}
		consensus := q.sum / float64(q.n)
		diff := support - consensus
		if diff < 0 {
			diff = -diff
		}
		m.trials++
		if diff <= a.Tolerance+Eps {
			m.hits++
		}
		if !m.flagged && m.trials >= a.MinAnswers && rateOf(m) < a.Floor {
			m.flagged = true // flags latch: a spammer stays excluded
		}
	}
	q.sum += support
	q.n++
}

// rateOf is the Laplace-smoothed accuracy rate.
func rateOf(m *memberAcc) float64 {
	return (float64(m.hits) + 1) / (float64(m.trials) + 2)
}

// ObserveDiscovery implements StopPolicy (accuracy tracking only consumes
// answers).
func (a *AccuracyWeightedStop) ObserveDiscovery(string, string) {}

// ShouldStop implements StopPolicy: the accuracy policy reweights the run
// instead of ending it.
func (a *AccuracyWeightedStop) ShouldStop() bool { return false }

// Estimate implements StopPolicy: the mean smoothed accuracy rate over
// graded members (1 before anyone has been graded — an unexamined crowd
// is trusted).
func (a *AccuracyWeightedStop) Estimate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.members) == 0 {
		return 1
	}
	sum := 0.0
	for _, m := range a.members {
		sum += rateOf(m)
	}
	return sum / float64(len(a.members))
}

// Weight implements MemberWeighter: the member's smoothed accuracy rate,
// 0 when flagged, 0.5 (the uninformed prior) before any grading.
func (a *AccuracyWeightedStop) Weight(memberID string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.members[memberID]
	if m == nil {
		return 0.5
	}
	if m.flagged {
		return 0
	}
	return rateOf(m)
}

// Flagged implements MemberWeighter.
func (a *AccuracyWeightedStop) Flagged(memberID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.members[memberID]
	return m != nil && m.flagged
}

// Rate returns the member's smoothed accuracy rate (0.5 before any
// grading), for reports and tests.
func (a *AccuracyWeightedStop) Rate(memberID string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.members[memberID]
	if m == nil {
		return 0.5
	}
	return rateOf(m)
}

// FlaggedMembers returns the flagged member IDs, sorted.
func (a *AccuracyWeightedStop) FlaggedMembers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for id, m := range a.members {
		if m.flagged {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Weighted is the accuracy-weighted aggregation black box: like
// FixedSample it waits for K answers per question, but the verdict
// compares the weight-averaged support against the threshold, with each
// member's contribution scaled by W.Weight and flagged members dropped
// entirely. With a nil W it degenerates to FixedSample's plain mean.
// Weights are read at verdict time, so a member flagged late loses
// influence over every still-undecided question at once.
type Weighted struct {
	K int
	W MemberWeighter

	mu   sync.Mutex
	data map[string]*record
}

// NewWeighted returns a Weighted aggregator requiring k answers and
// weighting them by w.
func NewWeighted(k int, w MemberWeighter) *Weighted {
	if k < 1 {
		k = 1
	}
	return &Weighted{K: k, W: w, data: make(map[string]*record)}
}

// Record implements Aggregator.
func (a *Weighted) Record(key, member string, support float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.data[key]
	if r == nil {
		r = &record{byMember: make(map[string]float64)}
		a.data[key] = r
	}
	if _, dup := r.byMember[member]; dup {
		return false
	}
	r.byMember[member] = support
	r.sum += support
	r.sumSq += support * support
	return true
}

// weightedMean computes the current weighted mean of a record, iterating
// members in sorted order so float summation is deterministic. When every
// weight is zero (the whole sample flagged) it falls back to the plain
// mean — a degenerate crowd still gets the paper's semantics.
func (a *Weighted) weightedMean(r *record) float64 {
	if len(r.byMember) == 0 {
		return 0
	}
	if a.W == nil {
		return r.sum / float64(len(r.byMember))
	}
	members := make([]string, 0, len(r.byMember))
	for m := range r.byMember {
		members = append(members, m)
	}
	sort.Strings(members)
	num, den := 0.0, 0.0
	for _, m := range members {
		if a.W.Flagged(m) {
			continue
		}
		w := a.W.Weight(m)
		if w <= 0 {
			continue
		}
		num += w * r.byMember[m]
		den += w
	}
	if den <= 0 {
		return r.sum / float64(len(r.byMember))
	}
	return num / den
}

// Verdict implements Aggregator.
func (a *Weighted) Verdict(key string, theta float64) Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.data[key]
	if r == nil || len(r.byMember) < a.K {
		return Undecided
	}
	if a.weightedMean(r) >= theta-Eps {
		return Significant
	}
	return Insignificant
}

// Answers implements Aggregator.
func (a *Weighted) Answers(key string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.data[key]; r != nil {
		return len(r.byMember)
	}
	return 0
}

// Mean implements Aggregator: the current weighted mean.
func (a *Weighted) Mean(key string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.data[key]
	if r == nil {
		return 0
	}
	return a.weightedMean(r)
}
