package aggregate

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// sampler draws species indices from a known abundance distribution, so
// the estimator can be checked against analytic ground truth: after n
// draws the true completeness is (distinct species seen)/S, a quantity
// the simulation knows exactly and the estimator must recover from the
// stream alone.
type sampler struct {
	cum []float64 // cumulative probabilities over S species
	rng *rand.Rand
}

// newSampler builds a sampler over S species with abundance p_k ∝
// 1/(k+1)^skew (skew 0 is uniform; larger skews are Zipf-ier).
func newSampler(S int, skew float64, seed int64) *sampler {
	weights := make([]float64, S)
	total := 0.0
	for k := 0; k < S; k++ {
		weights[k] = 1 / math.Pow(float64(k+1), skew)
		total += weights[k]
	}
	cum := make([]float64, S)
	acc := 0.0
	for k := 0; k < S; k++ {
		acc += weights[k] / total
		cum[k] = acc
	}
	return &sampler{cum: cum, rng: rand.New(rand.NewSource(seed))}
}

func (s *sampler) draw() int {
	u := s.rng.Float64()
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TestSpeciesStopConvergence is the estimator's statistical gate: streams
// drawn from known uniform and Zipf species distributions, with seeded
// RNG, must drive the completeness estimate to within tolerance of the
// analytic ground truth (observed distinct / true population). Each draw
// uses a fresh member ID, so the per-member dedup never interferes with
// the abundance counts.
func TestSpeciesStopConvergence(t *testing.T) {
	cases := []struct {
		name    string
		S       int     // true species count
		skew    float64 // 0 = uniform
		n       int     // sample size
		seed    int64
		tol     float64
		wantMin float64 // sanity floor on the true completeness itself
	}{
		{"uniform/small-pop/saturated", 50, 0, 600, 1, 0.05, 0.95},
		{"uniform/mid-pop/partial", 200, 0, 400, 2, 0.08, 0.70},
		{"uniform/large-pop/sparse", 400, 0, 500, 3, 0.10, 0.50},
		{"zipf1.0/mid-pop", 100, 1.0, 1200, 4, 0.12, 0.60},
		{"zipf1.0/large-pop", 250, 1.0, 2500, 5, 0.12, 0.50},
		{"zipf1.5/heavy-skew", 150, 1.5, 2000, 6, 0.15, 0.30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			smp := newSampler(tc.S, tc.skew, tc.seed)
			stop := NewSpeciesStop(2, 1) // target > 1: never stops, pure estimation
			seen := make(map[int]bool)
			for i := 0; i < tc.n; i++ {
				k := smp.draw()
				seen[k] = true
				stop.ObserveDiscovery(fmt.Sprintf("sp%04d", k), fmt.Sprintf("m%06d", i))
			}
			truth := float64(len(seen)) / float64(tc.S)
			if truth < tc.wantMin {
				t.Fatalf("simulation drifted: true completeness %.3f below the case's %.2f floor", truth, tc.wantMin)
			}
			est := stop.Estimate()
			if est < 0 || est > 1 {
				t.Fatalf("estimate %v outside [0,1]", est)
			}
			if diff := math.Abs(est - truth); diff > tc.tol {
				t.Errorf("estimate %.3f vs true completeness %.3f: off by %.3f (tolerance %.3f, observed %d/%d species)",
					est, truth, diff, tc.tol, len(seen), tc.S)
			}
		})
	}
}

// TestSpeciesStopEstimateTracksSampling: as the sample grows over a fixed
// population, the estimate must approach 1 along with the true coverage —
// the convergence half of the property, checked at checkpoints.
func TestSpeciesStopEstimateTracksSampling(t *testing.T) {
	const S = 80
	smp := newSampler(S, 0.8, 7)
	stop := NewSpeciesStop(2, 1)
	seen := make(map[int]bool)
	checkpoints := map[int]bool{200: true, 800: true, 3200: true}
	for i := 1; i <= 3200; i++ {
		k := smp.draw()
		seen[k] = true
		stop.ObserveDiscovery(fmt.Sprintf("sp%03d", k), fmt.Sprintf("m%05d", i))
		if checkpoints[i] {
			truth := float64(len(seen)) / S
			if diff := math.Abs(stop.Estimate() - truth); diff > 0.15 {
				t.Errorf("after %d draws: estimate %.3f vs truth %.3f (off %.3f)",
					i, stop.Estimate(), truth, diff)
			}
		}
	}
	if est := stop.Estimate(); est < 0.9 {
		t.Errorf("saturated sample still estimates %.3f completeness", est)
	}
}

// TestSpeciesStopLatch: ShouldStop latches — once the target is crossed,
// a later flood of fresh singletons (which drags the estimate down) must
// not revive the run.
func TestSpeciesStopLatch(t *testing.T) {
	stop := NewSpeciesStop(0.8, 10)
	// Saturate a tiny population: 4 species seen by 10 members each.
	for m := 0; m < 10; m++ {
		for k := 0; k < 4; k++ {
			stop.ObserveDiscovery(fmt.Sprintf("sp%d", k), fmt.Sprintf("m%d", m))
		}
	}
	if !stop.ShouldStop() {
		t.Fatalf("saturated stream did not stop: estimate %.3f, n=%d", stop.Estimate(), 40)
	}
	for i := 0; i < 100; i++ {
		stop.ObserveDiscovery(fmt.Sprintf("fresh%d", i), fmt.Sprintf("f%d", i))
		if !stop.ShouldStop() {
			t.Fatalf("stop revived after %d fresh singletons (estimate %.3f)", i+1, stop.Estimate())
		}
	}
}

// TestSpeciesStopDedup: repeated sightings of a species by the same
// member are one observation — chatty members cannot inflate coverage.
func TestSpeciesStopDedup(t *testing.T) {
	stop := NewSpeciesStop(0.99, 1)
	for i := 0; i < 50; i++ {
		stop.ObserveDiscovery("spA", "m1")
	}
	if got := stop.Observed(); got != 1 {
		t.Errorf("Observed() = %d after one member's repeats, want 1", got)
	}
	if stop.ShouldStop() {
		t.Error("a single singleton observation must not satisfy any target")
	}
	stop.ObserveDiscovery("spA", "m2")
	stop.ObserveDiscovery("spA", "m3")
	if got, want := stop.EstimatedRichness(), 1.0; math.Abs(got-want) > 0.01 {
		t.Errorf("richness %v for one thrice-seen species, want ~1", got)
	}
}

// TestSpeciesStopEmpty: the untouched estimator reports 0 completeness
// and never stops.
func TestSpeciesStopEmpty(t *testing.T) {
	stop := NewSpeciesStop(0, 0)
	if stop.Estimate() != 0 {
		t.Errorf("empty estimate = %v, want 0", stop.Estimate())
	}
	if stop.ShouldStop() {
		t.Error("empty estimator stopped")
	}
	if stop.Target != 0.9 || stop.MinObservations != 25 {
		t.Errorf("defaults = (%v, %d), want (0.9, 25)", stop.Target, stop.MinObservations)
	}
}

// TestStopByName covers the registry: every name resolves to a policy of
// that name, the empty name is the threshold default, unknown names err.
func TestStopByName(t *testing.T) {
	for _, name := range append(StopNames(), "") {
		p, err := StopByName(name)
		if err != nil {
			t.Fatalf("StopByName(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = StopThreshold
		}
		if p.Name() != want {
			t.Errorf("StopByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := StopByName("nope"); err == nil {
		t.Error("unknown stop policy accepted")
	}
	if len(StopNames()) != 3 {
		t.Errorf("StopNames() = %v, want 3 names", StopNames())
	}
}

// TestThresholdStopInert: the extracted default observes everything and
// does nothing.
func TestThresholdStopInert(t *testing.T) {
	var s ThresholdStop
	s.ObserveAnswer("q", "m", 0.5)
	s.ObserveDiscovery("p", "m")
	if s.ShouldStop() || s.Estimate() != 0 || s.Name() != StopThreshold {
		t.Errorf("ThresholdStop not inert: stop=%v est=%v name=%q", s.ShouldStop(), s.Estimate(), s.Name())
	}
}

// feedConsensus records one question answered by honest members at
// honest, then by the graded member at sup — the minimal stream that
// grades the member once against an established consensus.
func feedConsensus(a *AccuracyWeightedStop, q string, honest float64, member string, sup float64) {
	a.ObserveAnswer(q, "h1", honest)
	a.ObserveAnswer(q, "h2", honest)
	a.ObserveAnswer(q, member, sup)
}

// TestAccuracyFlagsDisagreement: a member consistently far from the
// consensus is flagged once MinAnswers trials accumulate; members inside
// the tolerance are not.
func TestAccuracyFlagsDisagreement(t *testing.T) {
	a := NewAccuracyWeightedStop(0.4, 4, 0.25)
	for i := 0; i < 6; i++ {
		q := fmt.Sprintf("q%d", i)
		feedConsensus(a, q, 0.75, "spam", 0.0) // always disagrees by 0.75
	}
	if !a.Flagged("spam") {
		t.Errorf("disagreeing member not flagged: rate %.3f", a.Rate("spam"))
	}
	if a.Weight("spam") != 0 {
		t.Errorf("flagged member weight = %v, want 0", a.Weight("spam"))
	}
	// h1 answered first on every question (no consensus yet), so h2 is the
	// graded honest member: always within tolerance.
	if a.Flagged("h2") {
		t.Errorf("agreeing member flagged: rate %.3f", a.Rate("h2"))
	}
	if w := a.Weight("h2"); w <= 0.5 {
		t.Errorf("agreeing member weight = %v, want > 0.5", w)
	}
	if got := a.FlaggedMembers(); len(got) != 1 || got[0] != "spam" {
		t.Errorf("FlaggedMembers() = %v, want [spam]", got)
	}
	if est := a.Estimate(); est <= 0 || est > 1 {
		t.Errorf("estimate %v outside (0,1]", est)
	}
}

// TestAccuracyNeedsMinAnswers: no flag before MinAnswers consensus
// comparisons, however bad the answers.
func TestAccuracyNeedsMinAnswers(t *testing.T) {
	a := NewAccuracyWeightedStop(0.4, 8, 0.25)
	for i := 0; i < 7; i++ {
		feedConsensus(a, fmt.Sprintf("q%d", i), 1.0, "spam", 0.0)
	}
	if a.Flagged("spam") {
		t.Error("flagged after 7 trials with MinAnswers=8")
	}
	feedConsensus(a, "q8", 1.0, "spam", 0.0)
	if !a.Flagged("spam") {
		t.Errorf("not flagged after 8 trials: rate %.3f", a.Rate("spam"))
	}
}

// TestAccuracyUngradedDefaults: unseen members carry the uninformed 0.5
// prior and the policy never ends the run.
func TestAccuracyUngradedDefaults(t *testing.T) {
	a := NewAccuracyWeightedStop(0, 0, 0)
	if a.Floor != 0.4 || a.MinAnswers != 8 || a.Tolerance != 0.25 {
		t.Errorf("defaults = (%v, %d, %v)", a.Floor, a.MinAnswers, a.Tolerance)
	}
	if a.Weight("nobody") != 0.5 || a.Rate("nobody") != 0.5 || a.Flagged("nobody") {
		t.Error("ungraded member not at the 0.5 prior")
	}
	if a.Estimate() != 1 {
		t.Errorf("ungraded crowd estimate = %v, want 1", a.Estimate())
	}
	if a.ShouldStop() {
		t.Error("accuracy policy must never stop the run")
	}
}

// fixedWeights is a test MemberWeighter with explicit weights and flags.
type fixedWeights struct {
	w       map[string]float64
	flagged map[string]bool
}

func (f fixedWeights) Weight(m string) float64 { return f.w[m] }
func (f fixedWeights) Flagged(m string) bool   { return f.flagged[m] }

// TestWeightedAggregator: verdicts wait for K answers, weight the mean,
// drop flagged members, and fall back to the plain mean when the whole
// sample is flagged.
func TestWeightedAggregator(t *testing.T) {
	w := fixedWeights{
		w:       map[string]float64{"good": 0.9, "meh": 0.3, "bad": 0.8},
		flagged: map[string]bool{"bad": true},
	}
	a := NewWeighted(3, w)
	if a.Record("q", "good", 1.0) != true || a.Record("q", "good", 0.5) != false {
		t.Fatal("Record dedup broken")
	}
	if v := a.Verdict("q", 0.5); v != Undecided {
		t.Fatalf("verdict with 1/3 answers = %v", v)
	}
	a.Record("q", "meh", 0.0)
	a.Record("q", "bad", 0.0)
	// Weighted mean ignores bad: (0.9·1 + 0.3·0)/1.2 = 0.75; plain mean
	// would be 0.33 — the weighting flips the verdict at θ=0.5.
	if v := a.Verdict("q", 0.5); v != Significant {
		t.Errorf("weighted verdict = %v, want significant (mean %v)", v, a.Mean("q"))
	}
	if m := a.Mean("q"); math.Abs(m-0.75) > 1e-9 {
		t.Errorf("weighted mean = %v, want 0.75", m)
	}
	if a.Answers("q") != 3 {
		t.Errorf("answers = %d, want 3", a.Answers("q"))
	}
	// All-flagged sample: plain-mean fallback.
	all := fixedWeights{w: map[string]float64{}, flagged: map[string]bool{"x": true, "y": true}}
	b := NewWeighted(2, all)
	b.Record("q", "x", 1.0)
	b.Record("q", "y", 0.0)
	if m := b.Mean("q"); math.Abs(m-0.5) > 1e-9 {
		t.Errorf("all-flagged fallback mean = %v, want 0.5", m)
	}
	// Nil weighter degenerates to FixedSample's mean.
	c := NewWeighted(1, nil)
	c.Record("q", "x", 0.6)
	if m := c.Mean("q"); math.Abs(m-0.6) > 1e-9 {
		t.Errorf("nil-weighter mean = %v, want 0.6", m)
	}
	if a.Answers("missing") != 0 || a.Mean("missing") != 0 || a.Verdict("missing", 0.5) != Undecided {
		t.Error("empty-key accessors broken")
	}
}
