package aggregate

import (
	"fmt"
	"testing"
)

// BenchmarkSpeciesObserve measures the streaming frequency-of-frequencies
// update on the discovery hot path (one observation per descent chain).
func BenchmarkSpeciesObserve(b *testing.B) {
	s := NewSpeciesStop(2, 1) // target > 1: never latches
	keys := make([]string, 256)
	members := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("p%03d", i)
	}
	for i := range members {
		members[i] = fmt.Sprintf("m%02d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ObserveDiscovery(keys[i%len(keys)], members[(i/7)%len(members)])
	}
}

// BenchmarkSpeciesEstimate measures the O(1) Chao92 estimate the engine
// polls between questions.
func BenchmarkSpeciesEstimate(b *testing.B) {
	s := NewSpeciesStop(2, 1)
	for i := 0; i < 4096; i++ {
		s.ObserveDiscovery(fmt.Sprintf("p%03d", i%300), fmt.Sprintf("m%02d", i%40))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}

// BenchmarkAccuracyObserve measures consensus grading on the answer
// recording path.
func BenchmarkAccuracyObserve(b *testing.B) {
	a := NewAccuracyWeightedStop(0, 0, 0)
	keys := make([]string, 128)
	members := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("q%03d", i)
	}
	for i := range members {
		members[i] = fmt.Sprintf("m%02d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ObserveAnswer(keys[i%len(keys)], members[i%len(members)], float64(i%5)/4)
	}
}

// BenchmarkWeightedVerdict measures the sorted weighted-mean verdict over
// a full K-member sample.
func BenchmarkWeightedVerdict(b *testing.B) {
	w := NewAccuracyWeightedStop(0, 0, 0)
	agg := NewWeighted(5, w)
	for m := 0; m < 5; m++ {
		mid := fmt.Sprintf("m%02d", m)
		agg.Record("q", mid, float64(m%2))
		w.ObserveAnswer("q", mid, float64(m%2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = agg.Verdict("q", 0.5)
	}
}
