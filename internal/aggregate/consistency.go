package aggregate

import (
	"sort"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// ConsistencyTracker implements the spammer filter of Section 4.2: within a
// member's answers, the support of a more specific fact-set can never exceed
// the support of a more general one; violations beyond a tolerance flag the
// member as inconsistent.
type ConsistencyTracker struct {
	Voc       *vocab.Vocabulary
	Tolerance float64 // allowed slack before an answer pair counts as a violation

	answers map[string][]answered // member -> answers
}

type answered struct {
	fs      fact.Set
	support float64
}

// NewConsistencyTracker returns a tracker with the given tolerance; a small
// positive tolerance (e.g. 0.25, one answer-scale step) still allows for
// honest imprecision while catching spammers.
func NewConsistencyTracker(v *vocab.Vocabulary, tolerance float64) *ConsistencyTracker {
	return &ConsistencyTracker{Voc: v, Tolerance: tolerance, answers: make(map[string][]answered)}
}

// Record stores one member answer.
func (c *ConsistencyTracker) Record(member string, fs fact.Set, support float64) {
	c.answers[member] = append(c.answers[member], answered{fs: fs.Canon(), support: support})
}

// Violations counts, for one member, the ordered answer pairs (A ≤ B) where
// the more specific fact-set B was reported more frequent than A by more
// than the tolerance.
func (c *ConsistencyTracker) Violations(member string) int {
	as := c.answers[member]
	n := 0
	for i := range as {
		for j := range as {
			if i == j {
				continue
			}
			// as[i] more general than as[j]: support must not increase.
			if fact.SetLeq(c.Voc, as[i].fs, as[j].fs) && as[j].support > as[i].support+c.Tolerance {
				n++
			}
		}
	}
	return n
}

// Inconsistent lists the members with more than maxViolations violations,
// sorted by name. Their answers can then be excluded from aggregation.
func (c *ConsistencyTracker) Inconsistent(maxViolations int) []string {
	var out []string
	for m := range c.answers {
		if c.Violations(m) > maxViolations {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}
