package aggregate

import (
	"testing"
)

// FuzzStopPolicy drives all three stop policies with an arbitrary
// interleaved answer/discovery stream decoded from fuzzer bytes and
// checks the contract every engine integration relies on: no panics,
// estimates stay within [0, 1], and ShouldStop is monotone — once a
// policy has latched it must never revive.
func FuzzStopPolicy(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55, 0x10, 0x20, 0x30, 0x40, 0x80, 0x81})
	seed := make([]byte, 0, 96)
	for i := 0; i < 96; i++ {
		seed = append(seed, byte(i*7))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		policies := []StopPolicy{
			ThresholdStop{},
			NewSpeciesStop(0.5, 4),
			NewAccuracyWeightedStop(0.5, 2, 0.25),
		}
		latched := make([]bool, len(policies))
		// Each event consumes 3 bytes: opcode/key, member, support.
		for i := 0; i+2 < len(data); i += 3 {
			op, key, member := data[i], data[i+1]&0x0F, data[i+2]&0x07
			support := float64(data[i+2]) / 255
			qk := string([]byte{'q', key})
			pk := string([]byte{'p', key})
			mid := string([]byte{'m', member})
			for pi, p := range policies {
				if op&1 == 0 {
					p.ObserveAnswer(qk, mid, support)
				} else {
					p.ObserveDiscovery(pk, mid)
				}
				if est := p.Estimate(); est < 0 || est > 1 {
					t.Fatalf("%s: estimate %v outside [0, 1]", p.Name(), est)
				}
				stop := p.ShouldStop()
				if latched[pi] && !stop {
					t.Fatalf("%s: ShouldStop revived after latching", p.Name())
				}
				latched[pi] = stop
			}
		}
		if policies[0].ShouldStop() {
			t.Fatal("threshold: must never stop")
		}
		// A weighter's outputs must stay sane for any member, graded or not.
		w := policies[2].(*AccuracyWeightedStop)
		for _, mid := range []string{"m\x00", "m\x03", "never-seen"} {
			if wt := w.Weight(mid); wt < 0 || wt > 1 {
				t.Fatalf("accuracy: weight %v outside [0, 1] for %q", wt, mid)
			}
			if w.Flagged(mid) && w.Weight(mid) != 0 {
				t.Fatalf("accuracy: flagged member %q has nonzero weight", mid)
			}
		}
	})
}
