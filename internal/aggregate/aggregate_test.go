package aggregate

import (
	"fmt"
	"testing"

	"oassis/internal/fact"
	"oassis/internal/ontology"
)

func TestFixedSampleLifecycle(t *testing.T) {
	a := NewFixedSample(5)
	const q = "q1"
	for i := 0; i < 4; i++ {
		if !a.Record(q, fmt.Sprintf("m%d", i), 0.5) {
			t.Fatal("fresh answer rejected")
		}
		if v := a.Verdict(q, 0.4); v != Undecided {
			t.Fatalf("verdict after %d answers = %v", i+1, v)
		}
	}
	a.Record(q, "m4", 0.5)
	if v := a.Verdict(q, 0.4); v != Significant {
		t.Errorf("verdict = %v, want significant (mean 0.5 ≥ 0.4)", v)
	}
	if v := a.Verdict(q, 0.6); v != Insignificant {
		t.Errorf("verdict = %v, want insignificant at theta 0.6", v)
	}
	if a.Answers(q) != 5 {
		t.Errorf("Answers = %d", a.Answers(q))
	}
	if a.Mean(q) != 0.5 {
		t.Errorf("Mean = %v", a.Mean(q))
	}
}

func TestFixedSampleDuplicateMember(t *testing.T) {
	a := NewFixedSample(2)
	if !a.Record("q", "alice", 1) {
		t.Fatal("first answer rejected")
	}
	if a.Record("q", "alice", 0) {
		t.Fatal("duplicate answer accepted")
	}
	if a.Answers("q") != 1 {
		t.Errorf("Answers = %d, want 1", a.Answers("q"))
	}
	if a.Mean("q") != 1 {
		t.Errorf("Mean changed by duplicate: %v", a.Mean("q"))
	}
}

func TestFixedSampleUnknownQuestion(t *testing.T) {
	a := NewFixedSample(3)
	if a.Verdict("nope", 0.5) != Undecided || a.Answers("nope") != 0 || a.Mean("nope") != 0 {
		t.Error("unknown question should be undecided/0")
	}
	if NewFixedSample(0).K != 1 {
		t.Error("K floor not applied")
	}
}

func TestFixedSampleExactThreshold(t *testing.T) {
	// The paper uses "average support exceeds the threshold" with ≥
	// semantics in Example 3.1 (5/12 ≥ 0.4 significant).
	a := NewFixedSample(2)
	a.Record("q", "u1", 0.25)
	a.Record("q", "u2", 0.75)
	if v := a.Verdict("q", 0.5); v != Significant {
		t.Errorf("verdict at exact threshold = %v", v)
	}
}

func TestConfidenceEarlyDecision(t *testing.T) {
	a := NewConfidence(1.96, 3, 50)
	// Unanimous high answers decide quickly.
	for i := 0; i < 3; i++ {
		a.Record("hi", fmt.Sprintf("m%d", i), 0.9)
	}
	if v := a.Verdict("hi", 0.4); v != Significant {
		t.Errorf("unanimous high: %v", v)
	}
	for i := 0; i < 3; i++ {
		a.Record("lo", fmt.Sprintf("m%d", i), 0.0)
	}
	if v := a.Verdict("lo", 0.4); v != Insignificant {
		t.Errorf("unanimous low: %v", v)
	}
	// Mixed answers near the threshold stay undecided.
	vals := []float64{0.2, 0.6, 0.4, 0.5}
	for i, s := range vals {
		a.Record("mid", fmt.Sprintf("m%d", i), s)
	}
	if v := a.Verdict("mid", 0.42); v != Undecided {
		t.Errorf("noisy mid: %v, want undecided", v)
	}
}

func TestConfidenceForcedAtMaxN(t *testing.T) {
	a := NewConfidence(1.96, 2, 4)
	vals := []float64{0.0, 1.0, 0.0, 1.0} // high variance, mean 0.5
	for i, s := range vals {
		a.Record("q", fmt.Sprintf("m%d", i), s)
	}
	if v := a.Verdict("q", 0.4); v != Significant {
		t.Errorf("forced verdict = %v, want significant (mean 0.5)", v)
	}
	if v := a.Verdict("q", 0.6); v != Insignificant {
		t.Errorf("forced verdict = %v, want insignificant", v)
	}
	if a.Answers("q") != 4 || a.Mean("q") != 0.5 {
		t.Error("bookkeeping wrong")
	}
}

func TestConfidenceParamFloors(t *testing.T) {
	a := NewConfidence(1.96, 0, -1)
	if a.MinN != 2 || a.MaxN != 2 {
		t.Errorf("floors: MinN=%d MaxN=%d", a.MinN, a.MaxN)
	}
}

func TestConsistencyTracker(t *testing.T) {
	s := ontology.NewSample()
	sport := fact.Set{s.Fact("Sport", "doAt", "Central Park")}
	biking := fact.Set{s.Fact("Biking", "doAt", "Central Park")}

	c := NewConsistencyTracker(s.Voc, 0.0)
	// Honest member: general ≥ specific.
	c.Record("honest", sport, 0.75)
	c.Record("honest", biking, 0.5)
	if v := c.Violations("honest"); v != 0 {
		t.Errorf("honest violations = %d", v)
	}
	// Spammer: claims the specific is MORE frequent than the general.
	c.Record("spam", sport, 0.25)
	c.Record("spam", biking, 1.0)
	if v := c.Violations("spam"); v == 0 {
		t.Error("spammer not detected")
	}
	bad := c.Inconsistent(0)
	if len(bad) != 1 || bad[0] != "spam" {
		t.Errorf("Inconsistent = %v", bad)
	}
	// Tolerance forgives one answer-scale step.
	c3 := NewConsistencyTracker(s.Voc, 0.25)
	c3.Record("sloppy", sport, 0.5)
	c3.Record("sloppy", biking, 0.75)
	if v := c3.Violations("sloppy"); v != 0 {
		t.Errorf("tolerance not applied: %d violations", v)
	}
	// Incomparable fact-sets never conflict.
	c4 := NewConsistencyTracker(s.Voc, 0.0)
	c4.Record("ok", biking, 1.0)
	c4.Record("ok", fact.Set{s.Fact("Pasta", "eatAt", "Pine")}, 0.0)
	if v := c4.Violations("ok"); v != 0 {
		t.Errorf("incomparable answers flagged: %d", v)
	}
}
