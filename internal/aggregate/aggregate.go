// Package aggregate implements the answer-aggregation black box of
// Section 4.2 of the paper: given the answers collected from different crowd
// members for a question, it decides (i) whether enough answers have been
// gathered and (ii) whether the assignment in question is overall
// significant. Two aggregators are provided: the fixed-sample mean used in
// the paper's crowd experiments (5 answers, average against the threshold)
// and a confidence-interval aggregator in the style of the SIGMOD'13 Crowd
// Mining framework [3]. A consistency tracker for spammer filtering
// (Section 4.2, crowd member selection) is in consistency.go.
package aggregate

import (
	"math"
	"sort"
	"sync"
)

// Eps absorbs floating-point noise in threshold comparisons: the paper's
// semantics is "average support ≥ θ", and sums like 1/2 + 1/3 + 2/3 must
// not fall on the wrong side of the threshold by one ulp.
const Eps = 1e-9

// Verdict is the aggregator's decision for one question.
type Verdict int

// Verdicts.
const (
	Undecided Verdict = iota
	Significant
	Insignificant
)

func (v Verdict) String() string {
	switch v {
	case Significant:
		return "significant"
	case Insignificant:
		return "insignificant"
	default:
		return "undecided"
	}
}

// Aggregator decides overall significance from per-member answers. Answers
// are recorded per question key (the canonical key of the asked fact-set);
// a member's repeated answers to the same question are ignored after the
// first (the engine caches member answers anyway).
type Aggregator interface {
	// Record stores an answer. It reports whether the answer was new.
	Record(questionKey, memberID string, support float64) bool
	// Verdict returns the current decision against threshold theta.
	Verdict(questionKey string, theta float64) Verdict
	// Answers reports how many distinct member answers are recorded.
	Answers(questionKey string) int
	// Mean reports the current average answer (0 if none).
	Mean(questionKey string) float64
}

type record struct {
	byMember map[string]float64
	sum      float64
	sumSq    float64
}

// FixedSample is the paper's crowd-experiment black box: a question is
// undecided until K answers have been collected; then it is significant iff
// the average support reaches the threshold.
type FixedSample struct {
	K int

	mu   sync.Mutex
	data map[string]*record
}

// NewFixedSample returns a FixedSample aggregator requiring k answers.
func NewFixedSample(k int) *FixedSample {
	if k < 1 {
		k = 1
	}
	return &FixedSample{K: k, data: make(map[string]*record)}
}

func (a *FixedSample) rec(key string) *record {
	r := a.data[key]
	if r == nil {
		r = &record{byMember: make(map[string]float64)}
		a.data[key] = r
	}
	return r
}

// Record implements Aggregator.
func (a *FixedSample) Record(key, member string, support float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.rec(key)
	if _, dup := r.byMember[member]; dup {
		return false
	}
	r.byMember[member] = support
	r.sum += support
	r.sumSq += support * support
	return true
}

// Verdict implements Aggregator.
func (a *FixedSample) Verdict(key string, theta float64) Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.data[key]
	if r == nil || len(r.byMember) < a.K {
		return Undecided
	}
	if r.sum/float64(len(r.byMember)) >= theta-Eps {
		return Significant
	}
	return Insignificant
}

// Answers implements Aggregator.
func (a *FixedSample) Answers(key string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.data[key]; r != nil {
		return len(r.byMember)
	}
	return 0
}

// Mean implements Aggregator.
func (a *FixedSample) Mean(key string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.data[key]
	if r == nil || len(r.byMember) == 0 {
		return 0
	}
	return r.sum / float64(len(r.byMember))
}

// Confidence is a confidence-interval aggregator in the style of the
// SIGMOD'13 Crowd Mining estimators: the question is decided as soon as the
// threshold falls outside the mean ± Z·(sd/√n) interval (with n ≥ MinN), and
// forced to a mean comparison at MaxN answers.
type Confidence struct {
	Z    float64 // normal quantile, e.g. 1.96 for 95%
	MinN int
	MaxN int

	mu   sync.Mutex
	data map[string]*record
}

// NewConfidence returns a Confidence aggregator with the given parameters.
func NewConfidence(z float64, minN, maxN int) *Confidence {
	if minN < 2 {
		minN = 2
	}
	if maxN < minN {
		maxN = minN
	}
	return &Confidence{Z: z, MinN: minN, MaxN: maxN, data: make(map[string]*record)}
}

func (a *Confidence) rec(key string) *record {
	r := a.data[key]
	if r == nil {
		r = &record{byMember: make(map[string]float64)}
		a.data[key] = r
	}
	return r
}

// Record implements Aggregator.
func (a *Confidence) Record(key, member string, support float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.rec(key)
	if _, dup := r.byMember[member]; dup {
		return false
	}
	r.byMember[member] = support
	r.sum += support
	r.sumSq += support * support
	return true
}

// Verdict implements Aggregator.
func (a *Confidence) Verdict(key string, theta float64) Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.data[key]
	if r == nil || len(r.byMember) < a.MinN {
		return Undecided
	}
	n := float64(len(r.byMember))
	mean := r.sum / n
	if len(r.byMember) >= a.MaxN {
		if mean >= theta-Eps {
			return Significant
		}
		return Insignificant
	}
	variance := r.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / n)
	switch {
	case mean-a.Z*se >= theta-Eps:
		return Significant
	case mean+a.Z*se < theta-Eps:
		return Insignificant
	default:
		return Undecided
	}
}

// Answers implements Aggregator.
func (a *Confidence) Answers(key string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.data[key]; r != nil {
		return len(r.byMember)
	}
	return 0
}

// Mean implements Aggregator.
func (a *Confidence) Mean(key string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.data[key]
	if r == nil || len(r.byMember) == 0 {
		return 0
	}
	return r.sum / float64(len(r.byMember))
}

// SortedKeys returns the recorded question keys of a FixedSample in sorted
// order (for deterministic reporting).
func (a *FixedSample) SortedKeys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.data))
	for k := range a.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
