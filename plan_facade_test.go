package oassis

import (
	"fmt"
	"strings"
	"testing"
)

// renderPlanResult flattens everything Exec promises into one comparable
// string: the MSP texts (in order), the ALL list, and the full run
// statistics. Bit-identical runs render identically.
func renderPlanResult(res *Result) string {
	var b strings.Builder
	for _, m := range res.MSPs {
		b.WriteString("msp: " + m.Text + "\n")
	}
	for _, m := range res.AllMSPs {
		b.WriteString("all-msp: " + m.Text + "\n")
	}
	for _, m := range res.AllSignificant {
		b.WriteString("sig: " + m.Text + "\n")
	}
	fmt.Fprintf(&b, "stats: %+v\n", res.Stats)
	return b.String()
}

// TestExecPlanEquivalenceMatrix is the facade half of the planner
// equivalence matrix: on the paper's running example, ExecPlan of a
// compiled plan — cache cold and cache warm — must be bit-identical to
// Exec of the query, at parallelism 1 and 8.
func TestExecPlanEquivalenceMatrix(t *testing.T) {
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 8} {
		opts := func() []Option {
			return []Option{
				WithAnswersPerQuestion(2),
				WithMoreCandidates(Triple{"Rent Bikes", "doAt", "Boathouse"}),
				WithParallelism(par),
			}
		}

		// Seed behavior: the query path (compiles internally).
		db1 := SampleDB()
		res, err := Exec(db1, q, table3Members(t, db1), opts()...)
		if err != nil {
			t.Fatal(err)
		}
		want := renderPlanResult(res)

		// Planned path, cache cold: first Compile on a fresh DB.
		db2 := SampleDB()
		p1, err := Compile(db2, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err = ExecPlan(db2, p1, table3Members(t, db2), opts()...)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderPlanResult(res); got != want {
			t.Errorf("parallelism %d: ExecPlan (cold) differs from Exec:\n--- Exec\n%s--- ExecPlan\n%s", par, want, got)
		}

		// Planned path, cache warm: recompiling returns the cached plan.
		p2, err := Compile(db2, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err = ExecPlan(db2, p2, table3Members(t, db2), opts()...)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderPlanResult(res); got != want {
			t.Errorf("parallelism %d: ExecPlan (warm) differs from Exec:\n--- Exec\n%s--- ExecPlan\n%s", par, want, got)
		}
	}
}

// TestPlanCacheEffectiveness pins the cache contract: a warm Compile
// returns the very same *plan.Plan (no new allocation), the hit/miss
// counters record it, and compile latency lands in the histogram.
func TestPlanCacheEffectiveness(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	p1, err := Compile(db, q, WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(db, q, WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if p1.inner != p2.inner {
		t.Error("warm Compile allocated a new plan instead of returning the cached one")
	}
	if p1.Fingerprint() != p2.Fingerprint() || !strings.HasPrefix(p1.Fingerprint(), "sha256:") {
		t.Errorf("fingerprints: %q vs %q", p1.Fingerprint(), p2.Fingerprint())
	}
	snap := m.Snapshot()
	if got := snap["oassis_plan_cache_misses_total"]; got != 1 {
		t.Errorf("misses = %v, want 1 (snapshot %v)", got, snap)
	}
	if got := snap["oassis_plan_cache_hits_total"]; got != 1 {
		t.Errorf("hits = %v, want 1 (snapshot %v)", got, snap)
	}
	if got := snap["oassis_plan_compile_seconds_count"]; got != 1 {
		t.Errorf("compile histogram count = %v, want 1 (snapshot %v)", got, snap)
	}

	// WithoutPlanCache forces a fresh compilation of an equal plan.
	p3, err := Compile(db, q, WithoutPlanCache())
	if err != nil {
		t.Fatal(err)
	}
	if p3.inner == p1.inner {
		t.Error("WithoutPlanCache returned the cached plan")
	}
	if p3.Fingerprint() != p1.Fingerprint() {
		t.Errorf("uncached recompile changed the fingerprint: %q vs %q", p3.Fingerprint(), p1.Fingerprint())
	}
}

// TestExecPlanDomainDrift: executing a plan against a DB whose domain has
// a different fingerprint is refused, not silently mis-executed.
func TestExecPlanDomainDrift(t *testing.T) {
	db1 := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(db1, q)
	if err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	for _, el := range []string{"Attraction", "Activity", "Restaurant", "NYC", "Central Park"} {
		if err := db2.AddTerm(el); err != nil {
			t.Fatal(err)
		}
	}
	for _, rel := range []string{"doAt", "eatAt", "nearBy", "inside", "instanceOf", "subClassOf", "hasLabel"} {
		if err := db2.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := db2.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecPlan(db2, p, nil); err == nil {
		t.Fatal("ExecPlan accepted a plan compiled against a different domain")
	} else if !strings.Contains(err.Error(), "different domain") {
		t.Fatalf("unexpected drift error: %v", err)
	}

	if _, err := ExecPlan(db1, nil, nil); err == nil {
		t.Fatal("ExecPlan accepted a nil plan")
	}
}
