package oassis

import (
	"oassis/internal/core"
	"oassis/internal/store"
)

// Store is a durable answer store rooted at a directory: every crowd
// answer a run collects is appended to a checksummed write-ahead log (and
// periodically compacted into a snapshot) before the run proceeds, and
// reopening the same directory recovers them. Pass it to Exec with
// WithStore to make runs crash-recoverable and resumable: a restarted run
// replays the recovered answers instead of re-asking the crowd, so no
// member ever sees a question they already answered.
type Store struct {
	inner *store.Store
	prime *core.Cache
}

// OpenStore opens (creating if needed) a store directory and recovers its
// state. Recovery replays the snapshot and the log, verifying each
// record's checksum and truncating a torn final record left by a crash.
func OpenStore(dir string) (*Store, error) {
	st, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	return &Store{inner: st, prime: rec.PrimeCache()}, nil
}

// RecoveredAnswers reports how many crowd answers were recovered when the
// store was opened; a resumed run reuses them without re-asking.
func (s *Store) RecoveredAnswers() int { return s.prime.Len() }

// Close flushes and closes the store.
func (s *Store) Close() error { return s.inner.Close() }

// WithStore attaches a durable answer store to the run: answers recovered
// from the store are replayed instead of re-asked (they still count in
// the statistics, as in the paper's §6.3 replay methodology), and every
// new answer is persisted before the run proceeds.
func WithStore(st *Store) Option { return func(o *options) { o.store = st } }
