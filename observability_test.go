package oassis

import (
	"reflect"
	"strings"
	"testing"
)

// TestMetricsDoNotPerturbResults is the observability layer's contract:
// attaching metrics and tracing to a run changes nothing about what it
// mines. MSPs, bindings, and Stats must be bit-identical with and without
// instrumentation, sequentially and under the concurrent dispatcher.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		run := func(extra ...Option) *Result {
			db := SampleDB()
			q, err := ParseQuery(figure2)
			if err != nil {
				t.Fatal(err)
			}
			opts := append([]Option{
				WithAnswersPerQuestion(2),
				WithMoreCandidates(Triple{"Rent Bikes", "doAt", "Boathouse"}),
				WithParallelism(parallelism),
			}, extra...)
			res, err := Exec(db, q, table3Members(t, db), opts...)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		plain := run()
		m := NewMetrics()
		tr := &TestTracer{}
		instrumented := run(WithMetrics(m), WithTracer(tr))
		if !reflect.DeepEqual(plain, instrumented) {
			t.Errorf("parallelism %d: instrumented result differs from plain run\nplain: %+v\ninstrumented: %+v",
				parallelism, plain, instrumented)
		}

		snap := m.Snapshot()
		total := func(name string) float64 {
			var sum float64
			for k, v := range snap {
				if strings.HasPrefix(k, name) {
					sum += v
				}
			}
			return sum
		}
		issued := total("oassis_session_questions_issued_total")
		answered := total("oassis_session_questions_answered_total")
		if issued == 0 || answered == 0 {
			t.Errorf("parallelism %d: instruments empty: issued=%g answered=%g",
				parallelism, issued, answered)
		}
		// Sequentially every submitted answer is one the engine asked for;
		// concurrently, speculative answers the round outran still land on
		// open instances, so the session-level counter may exceed the
		// engine's counted questions but never undershoot them.
		if parallelism == 1 && answered != float64(instrumented.Stats.TotalQuestions) {
			t.Errorf("answered counter %g != Stats.TotalQuestions %d",
				answered, instrumented.Stats.TotalQuestions)
		}
		if answered < float64(instrumented.Stats.TotalQuestions) {
			t.Errorf("parallelism %d: answered counter %g < Stats.TotalQuestions %d",
				parallelism, answered, instrumented.Stats.TotalQuestions)
		}
		if got := total("oassis_session_answer_latency_seconds_count"); got != answered {
			t.Errorf("parallelism %d: latency observations %g != answered %g",
				parallelism, got, answered)
		}
		if snap["oassis_session_questions_inflight"] != 0 {
			t.Errorf("parallelism %d: in-flight gauge %g after the run, want 0",
				parallelism, snap["oassis_session_questions_inflight"])
		}
		if tr.Len() == 0 {
			t.Errorf("parallelism %d: tracer saw no spans", parallelism)
		}
		var b strings.Builder
		if err := m.WritePrometheus(&b); err != nil {
			t.Fatalf("parallelism %d: WritePrometheus: %v", parallelism, err)
		}
		if !strings.Contains(b.String(), "# TYPE oassis_session_questions_issued_total counter") {
			t.Errorf("parallelism %d: exposition missing TYPE line:\n%s", parallelism, b.String())
		}
	}
}

// TestTracerSeesQuestionAttributes checks the span vocabulary: question
// spans carry the member, kind, and phase attributes the docs promise.
func TestTracerSeesQuestionAttributes(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	tr := &TestTracer{}
	if _, err := Exec(db, q, table3Members(t, db),
		WithAnswersPerQuestion(2), WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	var questions, rounds int
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "question":
			questions++
			if sp.Attr("member") == "" || sp.Attr("kind") == "" || sp.Attr("phase") == "" || sp.Attr("id") == "" {
				t.Fatalf("question span missing attributes: %+v", sp)
			}
		case "round":
			rounds++
			if sp.Attr("node") == "" {
				t.Fatalf("round span missing node attribute: %+v", sp)
			}
		}
	}
	if questions == 0 || rounds == 0 {
		t.Fatalf("spans: questions=%d rounds=%d, want both > 0", questions, rounds)
	}
}
