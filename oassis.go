// Package oassis is a query-driven crowd-mining engine: a Go implementation
// of "OASSIS: Query Driven Crowd Mining" (SIGMOD 2014). Users pose
// OASSIS-QL queries that combine an ontological selection (the WHERE
// clause, evaluated over a knowledge base) with data patterns to be mined
// from a crowd of members with personal, unrecorded histories (the
// SATISFYING clause). The engine interactively chooses questions for crowd
// members, infers the classification of whole regions of the answer space
// from each answer, and returns the maximal significant patterns (MSPs) —
// concise, redundancy-free answers such as "go biking in Central Park and
// eat at Maoz Vegetarian (tip: rent the bikes at the Boathouse)".
//
// The root package is a facade over the internal engine. A minimal session:
//
//	db := oassis.SampleDB()                         // the paper's Figure 1 ontology
//	q, _ := oassis.ParseQuery(queryText)            // OASSIS-QL (Figure 2 syntax)
//	crowd := []oassis.Member{ /* your members */ }
//	res, _ := oassis.Exec(db, q, crowd, oassis.WithAnswersPerQuestion(5))
//	for _, msp := range res.MSPs { fmt.Println(msp.Text) }
//
// Crowd members implement the Member interface; SimulatedMember builds one
// from a textual personal history for testing and simulation.
package oassis

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/panel"
	"oassis/internal/plan"
	"oassis/internal/rdfio"
	"oassis/internal/vocab"
)

// Triple is one fact in textual form. The special name "[]" denotes the
// anything wildcard.
type Triple struct {
	Subject, Relation, Object string
}

func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s", t.Subject, t.Relation, t.Object)
}

// DB bundles a vocabulary and an ontology. Once frozen, a DB lazily
// carries a shared core.Domain — the read-only (vocabulary, ontology,
// fingerprint, plan cache) bundle that all sessions over this DB
// reference — so the same query compiles once and is reused.
type DB struct {
	voc  *vocab.Vocabulary
	onto *ontology.Ontology

	domMu sync.Mutex
	dom   *core.Domain
}

// domain returns the DB's shared execution domain, building it on first
// use after Freeze. The error path is not latched: a DB used before
// Freeze reports ErrNotFrozen and works normally once frozen.
func (db *DB) domain() (*core.Domain, error) {
	if !db.voc.Frozen() {
		return nil, ErrNotFrozen
	}
	db.domMu.Lock()
	defer db.domMu.Unlock()
	if db.dom == nil {
		dom, err := core.NewDomain(db.voc, db.onto)
		if err != nil {
			return nil, err
		}
		db.dom = dom
	}
	return db.dom, nil
}

// NewDB returns an empty database for programmatic construction. Call
// Freeze before executing queries.
func NewDB() *DB {
	v := vocab.New()
	return &DB{voc: v, onto: ontology.New(v)}
}

// SampleDB returns the paper's running-example ontology (Figure 1).
func SampleDB() *DB {
	s := ontology.NewSample()
	return &DB{voc: s.Voc, onto: s.Onto}
}

// LoadOntology reads a Turtle-subset document (see the README for the
// format) and returns a frozen DB.
func LoadOntology(r io.Reader) (*DB, error) {
	v, o, err := rdfio.Load(r)
	if err != nil {
		return nil, err
	}
	return &DB{voc: v, onto: o}, nil
}

// WriteOntology serializes the DB in the same Turtle subset.
func (db *DB) WriteOntology(w io.Writer) error { return rdfio.Write(w, db.onto) }

// AddFact adds a universal fact, interning new element/relation names.
func (db *DB) AddFact(subject, relation, object string) error {
	s, err := db.voc.AddElement(subject)
	if err != nil {
		return err
	}
	r, err := db.voc.AddRelation(relation)
	if err != nil {
		return err
	}
	o, err := db.voc.AddElement(object)
	if err != nil {
		return err
	}
	return db.onto.Add(fact.Fact{S: s, R: r, O: o})
}

// AddSubsumption records that specific is a subClassOf/instanceOf-style
// specialization of general, both as an ontology fact and in the semantic
// order (Example 2.3 of the paper).
func (db *DB) AddSubsumption(general, specific, relation string) error {
	g, err := db.voc.AddElement(general)
	if err != nil {
		return err
	}
	s, err := db.voc.AddElement(specific)
	if err != nil {
		return err
	}
	r, err := db.voc.AddRelation(relation)
	if err != nil {
		return err
	}
	return db.onto.AddSubsumption(g, s, r)
}

// AddRelationOrder records general ≤ specific between two relations (e.g.
// nearBy ≤ inside: everything inside a place is near it).
func (db *DB) AddRelationOrder(general, specific string) error {
	g, err := db.voc.AddRelation(general)
	if err != nil {
		return err
	}
	s, err := db.voc.AddRelation(specific)
	if err != nil {
		return err
	}
	return db.voc.AddOrder(g, s)
}

// AddLabel attaches a hasLabel label to an element.
func (db *DB) AddLabel(element, label string) error {
	e, err := db.voc.AddElement(element)
	if err != nil {
		return err
	}
	return db.onto.AddLabel(e, label)
}

// AddTerm interns an element name without any facts (vocabulary-only terms
// such as Boathouse in the paper, which appear in histories but not in the
// ontology).
func (db *DB) AddTerm(element string) error {
	_, err := db.voc.AddElement(element)
	return err
}

// AddRelation interns a relation name without any facts (relations that
// appear only in personal histories and SATISFYING patterns, not in the
// ontology itself).
func (db *DB) AddRelation(name string) error {
	_, err := db.voc.AddRelation(name)
	return err
}

// Freeze validates the order relations and makes the DB immutable; it must
// be called before Exec (LoadOntology and SampleDB return frozen DBs).
func (db *DB) Freeze() error { return db.voc.Freeze() }

// triple converts an internal fact to the textual form.
func (db *DB) triple(f fact.Fact) Triple {
	name := func(t vocab.Term) string {
		if t == vocab.Any {
			return "[]"
		}
		return db.voc.Name(t)
	}
	return Triple{Subject: name(f.S), Relation: name(f.R), Object: name(f.O)}
}

func (db *DB) triples(fs fact.Set) []Triple {
	out := make([]Triple, len(fs))
	for i, f := range fs {
		out[i] = db.triple(f)
	}
	return out
}

// Query is a parsed OASSIS-QL query.
type Query struct {
	ast *oassisql.Query
}

// ParseQuery parses OASSIS-QL text (the Figure 2 syntax).
func ParseQuery(src string) (*Query, error) {
	ast, err := oassisql.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{ast: ast}, nil
}

// String renders the query in canonical OASSIS-QL syntax.
func (q *Query) String() string { return q.ast.String() }

// Support returns the query's support threshold.
func (q *Query) Support() float64 { return q.ast.Support }

// SpecializeResponse is the structured answer to a specialization
// question. Exactly one outcome applies: Chosen (the member picked the
// candidate at Choice, doing it with the given Frequency), Declined (the
// member prefers concrete questions), or neither ("none of these"). The
// struct form leaves room for future answer enrichments such as
// volunteered MORE-facts.
type SpecializeResponse struct {
	// Choice indexes the picked candidate; meaningful only when Chosen.
	Choice int
	// Frequency is how often the member does the picked candidate, in
	// [0, 1].
	Frequency float64
	// Chosen reports that a candidate was picked.
	Chosen bool
	// Declined reports that the member wants a concrete question instead.
	Declined bool
}

// Choose is a SpecializeResponse picking candidate idx with the given
// frequency.
func Choose(idx int, freq float64) SpecializeResponse {
	return SpecializeResponse{Choice: idx, Frequency: freq, Chosen: true}
}

// NoneOfThese is the SpecializeResponse rejecting every candidate.
func NoneOfThese() SpecializeResponse { return SpecializeResponse{} }

// DeclineSpecialization is the SpecializeResponse asking for concrete
// questions instead.
func DeclineSpecialization() SpecializeResponse {
	return SpecializeResponse{Declined: true}
}

// Member is a crowd member: the engine poses it questions about fact-sets.
// Implementations with human backends should translate the triples to
// natural language (see Questionnaire for templates).
type Member interface {
	// ID identifies the member.
	ID() string
	// HowOften answers a concrete question: how frequently the given
	// combination of facts occurs in the member's history, in [0, 1].
	HowOften(facts []Triple) float64
	// Specialize answers a specialization question: pick the candidate the
	// member does significantly often, report "none of these", or decline
	// in favor of concrete questions (see SpecializeResponse).
	Specialize(candidates [][]Triple) SpecializeResponse
	// Irrelevant optionally marks one of the given terms as irrelevant to
	// the member (user-guided pruning): everything involving the term is
	// then assumed never to occur for them.
	Irrelevant(terms []string) (string, bool)
}

// Prior is a best-guess answer attached to a panel question before the
// member sees it: the guessed frequency, how much to trust it, and where
// it came from ("aggregate", "ontology", or a WithPriorSource name). A
// high-confidence prior renders as a one-tap confirmation; lower
// confidences fall back to an open question with the guess pre-selected.
type Prior = crowd.Prior

// Confidence grades how much a Prior's guess should be trusted.
type Confidence = crowd.Confidence

// Confidence grades, from no usable guess to one-tap confirmation.
const (
	ConfidenceNone   = crowd.ConfidenceNone
	ConfidenceLow    = crowd.ConfidenceLow
	ConfidenceMedium = crowd.ConfidenceMedium
	ConfidenceHigh   = crowd.ConfidenceHigh
)

// PanelQuestion is one concrete question inside a member's panel: the
// questioned pattern plus its prior guess.
type PanelQuestion struct {
	Facts []Triple
	Prior Prior
}

// PanelMember is the optional batch-answering extension of Member: a
// member that can answer a whole panel of concrete questions in one round
// trip (a confirmation screen, a single crowd-platform HIT). AnswerPanel
// returns one frequency in [0, 1] per question, index-aligned. Members
// that do not implement it are asked per question; AdaptMember wraps one
// explicitly.
type PanelMember interface {
	Member
	AnswerPanel(qs []PanelQuestion) []float64
}

// AdaptMember wraps a single-question Member into a PanelMember whose
// AnswerPanel answers each item with HowOften. Use it where a PanelMember
// is required and per-question answering is acceptable.
func AdaptMember(m Member) PanelMember {
	if pm, ok := m.(PanelMember); ok {
		return pm
	}
	return &adaptedMember{m}
}

type adaptedMember struct{ Member }

func (a *adaptedMember) AnswerPanel(qs []PanelQuestion) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = a.HowOften(q.Facts)
	}
	return out
}

// PriorSource supplies the prior guess attached to each panel question
// (see WithPriorSource). Implementations must be deterministic for a
// given question; they are consulted while the engine is parked.
type PriorSource interface {
	Prior(q SessionQuestion) Prior
}

// memberAdapter bridges the facade Member to the internal crowd.Member.
type memberAdapter struct {
	db *DB
	m  Member
}

// newMemberAdapter bridges a facade member to the internal crowd.Member,
// preserving the optional panel capability: a PanelMember comes back as a
// crowd.Panelist, so the batching layer hands it whole panels.
func newMemberAdapter(db *DB, m Member) crowd.Member {
	a := memberAdapter{db: db, m: m}
	if pm, ok := m.(PanelMember); ok {
		return &panelistAdapter{memberAdapter: a, pm: pm}
	}
	return &a
}

// panelistAdapter additionally implements crowd.Panelist for facade
// members that batch-answer.
type panelistAdapter struct {
	memberAdapter
	pm PanelMember
}

func (a *panelistAdapter) AnswerPanel(qs []crowd.PanelQuestion) []float64 {
	out := make([]PanelQuestion, len(qs))
	for i, q := range qs {
		out[i] = PanelQuestion{Facts: a.db.triples(q.Facts), Prior: q.Prior}
	}
	return a.pm.AnswerPanel(out)
}

func (a *memberAdapter) ID() string { return a.m.ID() }

func (a *memberAdapter) Concrete(fs fact.Set) float64 {
	return a.m.HowOften(a.db.triples(fs))
}

func (a *memberAdapter) ChooseSpecialization(candidates []fact.Set) crowd.SpecializeResponse {
	cs := make([][]Triple, len(candidates))
	for i, c := range candidates {
		cs[i] = a.db.triples(c)
	}
	r := a.m.Specialize(cs)
	return crowd.SpecializeResponse{
		Choice:   r.Choice,
		Support:  r.Frequency,
		Chosen:   r.Chosen,
		Declined: r.Declined,
	}
}

func (a *memberAdapter) Irrelevant(terms []vocab.Term) (vocab.Term, bool) {
	names := make([]string, len(terms))
	for i, t := range terms {
		names[i] = a.db.voc.Name(t)
	}
	name, ok := a.m.Irrelevant(names)
	if !ok {
		return vocab.None, false
	}
	t, found := a.db.voc.Lookup(name)
	if !found {
		return vocab.None, false
	}
	return t, true
}

// SimulatedMember builds a member whose virtual personal history is given
// as textual transactions, e.g.
//
//	oassis.SimulatedMember(db, "u1",
//	    "Basketball doAt Central Park. Falafel eatAt Maoz Veg",
//	    "Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
//	)
//
// Answers use the paper's five-level frequency scale. Options adjust the
// behavior (see SimOption).
func SimulatedMember(db *DB, id string, transactions ...string) (Member, error) {
	pdb := crowd.NewPersonalDB(db.voc)
	for _, t := range transactions {
		fs, err := fact.Parse(db.voc, t)
		if err != nil {
			return nil, err
		}
		pdb.Add(fs)
	}
	sim := &crowd.SimMember{Name: id, DB: pdb, Disc: crowd.Exact, SpecializeProb: 1, Theta: 0.1}
	return &simWrapper{db: db, sim: sim}, nil
}

// simWrapper exposes an internal SimMember through the facade interface.
type simWrapper struct {
	db  *DB
	sim *crowd.SimMember
}

func (w *simWrapper) ID() string { return w.sim.Name }

func (w *simWrapper) HowOften(facts []Triple) float64 {
	fs, err := w.db.factSet(facts)
	if err != nil {
		return 0
	}
	return w.sim.Concrete(fs)
}

func (w *simWrapper) Specialize(candidates [][]Triple) SpecializeResponse {
	sets := make([]fact.Set, len(candidates))
	for i, c := range candidates {
		fs, err := w.db.factSet(c)
		if err != nil {
			return DeclineSpecialization()
		}
		sets[i] = fs
	}
	r := w.sim.ChooseSpecialization(sets)
	return SpecializeResponse{
		Choice:    r.Choice,
		Frequency: r.Support,
		Chosen:    r.Chosen,
		Declined:  r.Declined,
	}
}

func (w *simWrapper) Irrelevant(terms []string) (string, bool) {
	ts := make([]vocab.Term, 0, len(terms))
	for _, n := range terms {
		if t, ok := w.db.voc.Lookup(n); ok {
			ts = append(ts, t)
		}
	}
	t, ok := w.sim.Irrelevant(ts)
	if !ok {
		return "", false
	}
	return w.db.voc.Name(t), true
}

// factSet converts triples to an internal fact-set.
func (db *DB) factSet(ts []Triple) (fact.Set, error) {
	out := make(fact.Set, 0, len(ts))
	lookup := func(name string, kind vocab.Kind) (vocab.Term, error) {
		if name == "[]" {
			return vocab.Any, nil
		}
		t, ok := db.voc.Lookup(name)
		if !ok {
			return vocab.None, ErrUnknownTerm{Name: name}
		}
		if db.voc.KindOf(t) != kind {
			return vocab.None, fmt.Errorf("oassis: %q has the wrong kind", name)
		}
		return t, nil
	}
	for _, tr := range ts {
		s, err := lookup(tr.Subject, vocab.Element)
		if err != nil {
			return nil, err
		}
		r, err := lookup(tr.Relation, vocab.Relation)
		if err != nil {
			return nil, err
		}
		o, err := lookup(tr.Object, vocab.Element)
		if err != nil {
			return nil, err
		}
		out = append(out, fact.Fact{S: s, R: r, O: o})
	}
	return out.Canon(), nil
}

// Answer is one mined pattern.
type Answer struct {
	// Facts is the pattern's fact-set.
	Facts []Triple
	// Text is the fact-set in the paper's notation.
	Text string
	// Bindings maps each mining variable to its value set (the SELECT
	// VARIABLES view of the same answer; sets have more than one value when
	// the query used multiplicities).
	Bindings map[string][]string
	// Valid reports whether the pattern is valid w.r.t. the query's WHERE
	// clause (maximal significant patterns may be slightly more general).
	Valid bool
}

// Stats summarizes the crowd effort of a run.
type Stats struct {
	TotalQuestions  int
	UniqueQuestions int
	Concrete        int
	Specialization  int
	NoneOfThese     int
	PruningClicks   int
	GeneratedNodes  int
	// PrimedAnswers counts answers replayed from a WithStore store
	// instead of asked live (they are included in TotalQuestions).
	PrimedAnswers int
	// StoreErrors counts failed writes to a WithStore store; non-zero
	// means the store is missing records (the run itself kept going).
	StoreErrors int
	// SpamFlagged counts members the StopAccuracy policy flagged below
	// its spammer floor (flagged members stop receiving questions and
	// their answers lose aggregation weight).
	SpamFlagged int
	// StoppedEarly reports that the stop policy ended the run before
	// every generated pattern was classified (the StopSpecies coverage
	// target was reached).
	StoppedEarly bool
	// StopEstimate is the stop policy's final estimate in [0, 1]:
	// answer-set completeness for StopSpecies, mean member accuracy for
	// StopAccuracy, 0 under the default threshold policy.
	StopEstimate float64
	// StopSettled counts patterns an early stop classified from answers
	// already in hand (the frontier settlement pass) instead of asking
	// further questions.
	StopSettled int
	// StopUnclassified counts generated patterns an early stop left
	// unclassified (never answered) — a lower bound on the crowd answers
	// saved.
	StopUnclassified int
}

// Result of executing a query.
type Result struct {
	// MSPs are the maximal significant patterns (the query output; only
	// valid ones unless the query asked for ALL).
	MSPs []Answer
	// AllMSPs additionally includes maximal significant patterns that are
	// not valid w.r.t. the WHERE clause (the set M of Algorithm 1).
	AllMSPs []Answer
	// AllSignificant lists every significant valid assignment when the
	// query used SELECT ... ALL.
	AllSignificant []Answer
	Stats          Stats
}

// options collects Exec options.
type options struct {
	answersPerQuestion  int
	specializationRatio float64
	pruning             bool
	seed                int64
	maxQuestions        int
	maxPerMember        int
	moreCandidates      []Triple
	topK                int
	spamMaxViolations   int
	stopPolicy          string
	policy              string
	parallelism         int
	panelSize           int
	priorSource         PriorSource
	noPlanCache         bool
	store               *Store
	metrics             *Metrics
	tracer              Tracer
}

// Option configures Exec.
type Option func(*options)

// WithAnswersPerQuestion sets how many member answers classify a question
// (the paper's crowd experiments use 5). Default 1.
func WithAnswersPerQuestion(k int) Option {
	return func(o *options) { o.answersPerQuestion = k }
}

// WithSpecializationRatio sets the probability of posing specialization
// questions instead of concrete ones while descending. Default 0.
func WithSpecializationRatio(r float64) Option {
	return func(o *options) { o.specializationRatio = r }
}

// WithPruning enables user-guided pruning clicks.
func WithPruning() Option { return func(o *options) { o.pruning = true } }

// WithSeed seeds the engine's random choices (default 1; runs are always
// deterministic for a fixed seed).
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithMaxQuestions caps the total number of crowd answers.
func WithMaxQuestions(n int) Option { return func(o *options) { o.maxQuestions = n } }

// WithMaxQuestionsPerMember caps each member's effort.
func WithMaxQuestionsPerMember(n int) Option { return func(o *options) { o.maxPerMember = n } }

// WithMoreCandidates seeds the MORE-fact candidate pool (facts crowd
// members may volunteer as additional advice).
func WithMoreCandidates(ts ...Triple) Option {
	return func(o *options) { o.moreCandidates = ts }
}

// WithTopK stops mining as soon as k maximal significant patterns are
// confirmed (the incremental top-k extension of the paper's Section 8).
func WithTopK(k int) Option { return func(o *options) { o.topK = k } }

// WithSpamFilter enables the consistency-based crowd-member filter of
// Section 4.2: members whose answers violate support monotonicity more than
// maxViolations times (beyond a one-scale-step tolerance) are excluded from
// further questions.
func WithSpamFilter(maxViolations int) Option {
	return func(o *options) { o.spamMaxViolations = maxViolations }
}

// Stop-policy names for WithStopPolicy.
const (
	// StopThreshold is the default: ask until the significance
	// thresholds settle on every generated pattern (the paper's
	// behavior, bit-identical to not setting a policy at all).
	StopThreshold = aggregate.StopThreshold
	// StopSpecies stops open-world enumeration early: a streaming
	// Chao92 species-richness estimator over the crowd's discovered
	// patterns ends the run once estimated answer-set completeness
	// crosses its target.
	StopSpecies = aggregate.StopSpecies
	// StopAccuracy grades members online against the running consensus:
	// answers are aggregation-weighted by each member's accuracy rate,
	// and members below the spammer floor are excluded.
	StopAccuracy = aggregate.StopAccuracy
)

// Ordering-policy names for WithPolicy.
const (
	// PolicyPaperOrder is the default: the paper's §4 bottom-up order,
	// smallest unclassified pattern first (bit-identical to not setting
	// a policy at all).
	PolicyPaperOrder = plan.PolicyPaperOrder
	// PolicyLargestFirst asks about the largest unclassified pattern
	// first, descending from the most specific candidates.
	PolicyLargestFirst = plan.PolicyLargestFirst
	// PolicyChainPrune is the taxonomy-aware fringe ordering: prefer the
	// pattern whose classification settles the largest unresolved
	// neighborhood whichever way the verdict falls, bisecting unresolved
	// chains instead of crawling them.
	PolicyChainPrune = plan.PolicyChainPrune
	// PolicyMaxPrune is the adaptive ordering: candidates are re-scored
	// every round from the live answer distribution, maximizing the
	// expected number of patterns settled by inference per question.
	PolicyMaxPrune = plan.PolicyMaxPrune
)

// WithPolicy selects the question-ordering policy of the run:
// PolicyPaperOrder (default), PolicyLargestFirst, PolicyChainPrune or
// PolicyMaxPrune. The ordering is part of the compiled plan — plans with
// different orderings have different fingerprints, so the plan cache and
// a WithStore WAL keep them apart. Every ordering yields the identical
// mined MSP set (the equivalence matrix proves it across parallelism and
// panel batching); what changes is how many questions the crowd answers
// to get there. An unknown name is reported as ErrInvalidOption.
func WithPolicy(name string) Option {
	return func(o *options) { o.policy = name }
}

// WithStopPolicy selects the streaming stop-condition policy of the run:
// StopThreshold (default), StopSpecies or StopAccuracy. The policy is
// part of the compiled plan — plans with different stop policies have
// different fingerprints, so the plan cache and a WithStore WAL keep
// them apart. An unknown name is reported as ErrInvalidOption.
func WithStopPolicy(name string) Option {
	return func(o *options) { o.stopPolicy = name }
}

// WithoutPlanCache bypasses the DB's shared plan cache: the query is
// recompiled from scratch and the result is not cached. Mined results
// are bit-identical either way; the option exists for benchmarks and for
// callers that compile many one-off queries they will never rerun.
func WithoutPlanCache() Option { return func(o *options) { o.noPlanCache = true } }

// WithParallelism keeps up to p questions in flight at once, dispatching
// them to members from a worker pool. Mined results are identical to the
// sequential run for members whose answers depend only on the question
// asked (true for humans and the simulated members); only wall clock
// changes. Default 1 (sequential).
func WithParallelism(p int) Option { return func(o *options) { o.parallelism = p } }

// WithPanelSize switches execution to panel-first batching: up to n
// currently answerable questions are grouped into one prior-primed panel
// per member and answered in one round trip (PanelMember implementations
// get the whole panel at once). Mined results are bit-identical to the
// one-question default; only the number of member round trips changes.
// Composes with WithParallelism, which then bounds panels in flight.
// Default 0 (one question per round trip).
func WithPanelSize(n int) Option { return func(o *options) { o.panelSize = n } }

// WithPriorSource replaces the default prior source (the running
// aggregate, then the ontology's shape) used to prime panel questions.
// Priors only change how questions render — confirmation versus open —
// never the mined result. Meaningful with WithPanelSize or NewSession.
func WithPriorSource(src PriorSource) Option { return func(o *options) { o.priorSource = src } }

// priorSourceAdapter lifts a facade PriorSource to the internal batching
// layer's interface.
type priorSourceAdapter struct {
	db  *DB
	src PriorSource
}

func (a priorSourceAdapter) Prior(q core.Question) crowd.Prior {
	return a.src.Prior(convertQuestion(a.db, q))
}

// compilePlan resolves the query into a plan, through the DB's shared
// plan cache unless WithoutPlanCache was given.
func compilePlan(db *DB, q *Query, o *options) (*plan.Plan, error) {
	dom, err := db.domain()
	if err != nil {
		return nil, err
	}
	var m *plan.CacheMetrics
	if o.metrics != nil {
		m = o.metrics.plan
	}
	if o.noPlanCache {
		pl, err := plan.Compile(dom.Voc, dom.Onto, q.ast, dom.Fingerprint())
		if err != nil {
			return nil, err
		}
		if o.stopPolicy != "" {
			if pl, err = pl.WithStop(o.stopPolicy); err != nil {
				return nil, err
			}
		}
		if o.policy != "" {
			if pl, err = pl.WithPolicy(o.policy); err != nil {
				return nil, err
			}
		}
		return pl, nil
	}
	pl, _, err := dom.CompileVariant(q.ast, o.stopPolicy, o.policy, m)
	return pl, err
}

// planConfig turns (DB, plan, options) into the engine configuration and
// a fresh per-run assignment space shared by Exec, ExecContext,
// ExecPlan and NewSession. The plan's immutable parts are shared; the
// space's memo state is private to the run.
func planConfig(db *DB, pl *plan.Plan, o *options) (*assign.Space, core.Config, error) {
	var cfg core.Config
	sp := pl.NewSpace()
	if pl.More && len(o.moreCandidates) > 0 {
		pool, err := db.factSet(o.moreCandidates)
		if err != nil {
			return nil, cfg, err
		}
		sp.MoreCandidates = pool
	}
	ordering, err := pl.Ordering()
	if err != nil {
		return nil, cfg, err
	}
	stop, err := pl.NewStop()
	if err != nil {
		return nil, cfg, err
	}
	cfg = core.Config{
		Space:                 sp,
		Theta:                 pl.Support,
		Ordering:              ordering,
		Agg:                   aggregate.NewFixedSample(o.answersPerQuestion),
		SpecializationRatio:   o.specializationRatio,
		EnablePruning:         o.pruning,
		MaxQuestions:          o.maxQuestions,
		MaxQuestionsPerMember: o.maxPerMember,
		MaxMSPs:               o.topK,
		SpamMaxViolations:     o.spamMaxViolations,
		SpamTolerance:         0.25,
		PanelSpeculation:      o.panelSize,
		Stop:                  stop,
		Rng:                   rand.New(rand.NewSource(o.seed)),
	}
	if w, ok := stop.(aggregate.MemberWeighter); ok {
		// A member-grading policy pairs with the weighted aggregator: the
		// two share the accuracy tracker, so flags and weights take effect
		// in the verdicts immediately.
		cfg.Agg = aggregate.NewWeighted(o.answersPerQuestion, w)
	}
	if o.store != nil {
		cfg.Store = o.store.inner
		if o.store.prime.Len() > 0 {
			cfg.Prime = o.store.prime
		}
	}
	if o.metrics != nil {
		cfg.Metrics = o.metrics.core
	}
	cfg.Tracer = o.tracer
	return sp, cfg, nil
}

// compile turns (DB, query, options) into a compiled plan plus the engine
// configuration: the planning pipeline of Exec/ExecContext/NewSession.
func compile(db *DB, q *Query, o *options) (*plan.Plan, *assign.Space, core.Config, error) {
	pl, err := compilePlan(db, q, o)
	if err != nil {
		return nil, nil, core.Config{}, err
	}
	sp, cfg, err := planConfig(db, pl, o)
	return pl, sp, cfg, err
}

// convertResult maps an engine result to the facade's textual form. all
// mirrors SELECT ... ALL.
func convertResult(db *DB, all bool, sp *assign.Space, res *core.Result) *Result {
	out := &Result{Stats: Stats{
		TotalQuestions:   res.Stats.TotalQuestions,
		UniqueQuestions:  res.Stats.UniqueQuestions,
		Concrete:         res.Stats.Concrete,
		Specialization:   res.Stats.Specialization,
		NoneOfThese:      res.Stats.NoneOfThese,
		PruningClicks:    res.Stats.Pruning,
		GeneratedNodes:   res.Stats.GeneratedNodes,
		PrimedAnswers:    res.Stats.PrimedAnswers,
		StoreErrors:      res.Stats.StoreErrors,
		SpamFlagged:      res.Stats.SpamFlagged,
		StoppedEarly:     res.Stats.StoppedEarly,
		StopEstimate:     res.Stats.StopEstimate,
		StopSettled:      res.Stats.StopSettled,
		StopUnclassified: res.Stats.StopUnclassified,
	}}
	toAnswer := func(a assign.Assignment, valid bool) Answer {
		fs := sp.Instantiate(a)
		bindings := make(map[string][]string, len(sp.Vars))
		for i, vs := range sp.Vars {
			names := make([]string, len(a.Vals[i]))
			for j, t := range a.Vals[i] {
				names[j] = db.voc.Name(t)
			}
			bindings[vs.Name] = names
		}
		return Answer{Facts: db.triples(fs), Text: fs.Format(db.voc),
			Bindings: bindings, Valid: valid}
	}
	for _, m := range res.MSPs {
		out.AllMSPs = append(out.AllMSPs, toAnswer(m, sp.IsValid(m)))
	}
	for _, m := range res.ValidMSPs {
		out.MSPs = append(out.MSPs, toAnswer(m, true))
	}
	if all {
		for _, a := range core.AllSignificant(sp, res.MSPs) {
			out.AllSignificant = append(out.AllSignificant, toAnswer(a, sp.IsValid(a)))
		}
	}
	return out
}

// answerWith obtains m's answer to a session question.
func answerWith(m crowd.Member, q core.Question) core.Answer {
	switch q.Kind {
	case core.KindSpecialization:
		r := m.ChooseSpecialization(q.Choices)
		return core.Answer{Support: r.Support, Choice: r.Choice, Chosen: r.Chosen, Declined: r.Declined}
	case core.KindPruning:
		if t, ok := m.Irrelevant(q.Terms); ok {
			for i, cand := range q.Terms {
				if cand == t {
					return core.AnswerIrrelevant(i)
				}
			}
		}
		return core.AnswerNoClick()
	default:
		return core.AnswerSupport(m.Concrete(q.Facts))
	}
}

// Exec evaluates the query over the DB with the given crowd.
func Exec(db *DB, q *Query, members []Member, opts ...Option) (*Result, error) {
	return ExecContext(context.Background(), db, q, members, opts...)
}

// ExecContext is Exec honoring a context: when ctx is canceled the run
// stops asking questions, discards any answer still in flight, and returns
// ctx's error.
func ExecContext(ctx context.Context, db *DB, q *Query, members []Member, opts ...Option) (*Result, error) {
	o := options{answersPerQuestion: 1, seed: 1, parallelism: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	pl, err := compilePlan(db, q, &o)
	if err != nil {
		return nil, err
	}
	return execCompiled(ctx, db, pl, members, &o)
}

// Plan is a compiled, immutable query plan: the result of Compile, ready
// to execute any number of times (concurrently, over different crowds)
// with ExecPlan. Its JSON serialization is the reviewable IR; its
// fingerprint is the content address the plan cache and the durable
// store's drift detection use.
type Plan struct {
	inner *plan.Plan
}

// Fingerprint returns the plan's content address ("sha256:…" over the
// canonical serialization).
func (p *Plan) Fingerprint() string { return p.inner.Fingerprint() }

// DomainFingerprint returns the fingerprint of the domain (vocabulary +
// ontology) the plan was compiled against.
func (p *Plan) DomainFingerprint() string { return p.inner.DomainFP }

// Query returns the canonical text of the compiled query.
func (p *Plan) Query() string { return p.inner.QueryText }

// StopPolicy returns the name of the stop policy compiled into the plan
// (StopThreshold unless WithStopPolicy chose otherwise).
func (p *Plan) StopPolicy() string { return p.inner.StopName }

// Policy returns the name of the question-ordering policy compiled into
// the plan (PolicyPaperOrder unless WithPolicy chose otherwise).
func (p *Plan) Policy() string { return p.inner.PolicyName }

// MarshalJSON returns the plan IR with terms resolved to names.
func (p *Plan) MarshalJSON() ([]byte, error) { return p.inner.MarshalJSON() }

// Compile compiles q over db into an immutable Plan, consulting the DB's
// shared plan cache (compiling the same query text over the same frozen
// domain twice returns the cached plan). Options that matter here:
// WithMetrics records cache hits/misses and compile latency;
// WithoutPlanCache forces a fresh compilation.
func Compile(db *DB, q *Query, opts ...Option) (*Plan, error) {
	o := options{answersPerQuestion: 1, seed: 1, parallelism: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	pl, err := compilePlan(db, q, &o)
	if err != nil {
		return nil, err
	}
	return &Plan{inner: pl}, nil
}

// ExecPlan executes a compiled plan over the DB with the given crowd. The
// plan must have been compiled against this DB's current domain;
// executing a plan against a drifted domain is an error, not a wrong
// answer. Results are bit-identical to Exec of the original query.
func ExecPlan(db *DB, p *Plan, members []Member, opts ...Option) (*Result, error) {
	return ExecPlanContext(context.Background(), db, p, members, opts...)
}

// ExecPlanContext is ExecPlan honoring a context.
func ExecPlanContext(ctx context.Context, db *DB, p *Plan, members []Member, opts ...Option) (*Result, error) {
	if p == nil || p.inner == nil {
		return nil, fmt.Errorf("oassis: ExecPlan of a nil plan")
	}
	o := options{answersPerQuestion: 1, seed: 1, parallelism: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	dom, err := db.domain()
	if err != nil {
		return nil, err
	}
	if fp := p.inner.DomainFP; fp != dom.Fingerprint() {
		return nil, fmt.Errorf("oassis: plan was compiled against a different domain (plan %s, db %s)",
			fp, dom.Fingerprint())
	}
	pl := p.inner
	var m *plan.CacheMetrics
	if o.metrics != nil {
		m = o.metrics.plan
	}
	if o.stopPolicy != "" && o.stopPolicy != pl.StopName {
		// WithStopPolicy on an already-compiled plan: derive the variant
		// through the domain's cache (same tables, new fingerprint).
		pl, _, err = dom.Plans().GetOrDerive(pl, o.stopPolicy, m)
		if err != nil {
			return nil, err
		}
	}
	if o.policy != "" && o.policy != pl.PolicyName {
		// Same derivation discipline for WithPolicy.
		pl, _, err = dom.Plans().GetOrDerivePolicy(pl, o.policy, m)
		if err != nil {
			return nil, err
		}
	}
	return execCompiled(ctx, db, pl, members, &o)
}

// execCompiled is the shared execution tail of ExecContext and
// ExecPlanContext: build the per-run engine configuration from the plan
// and drive the crowd.
func execCompiled(ctx context.Context, db *DB, pl *plan.Plan, members []Member, o *options) (*Result, error) {
	sp, cfg, err := planConfig(db, pl, o)
	if err != nil {
		return nil, err
	}
	cfg.Canceled = func() bool { return ctx.Err() != nil }
	cms := make([]crowd.Member, len(members))
	byID := make(map[string]crowd.Member, len(members))
	ids := make([]string, len(members))
	for i, m := range members {
		cms[i] = newMemberAdapter(db, m)
		ids[i] = m.ID()
		byID[m.ID()] = cms[i]
	}
	cfg.Members = cms
	var res *core.Result
	if o.panelSize > 0 {
		// Panel-first: batch the answerable questions into prior-primed
		// per-member panels; parallelism bounds panels in flight.
		pcfg := panel.Config{Size: o.panelSize}
		if o.priorSource != nil {
			pcfg.Source = priorSourceAdapter{db: db, src: o.priorSource}
		}
		res, _ = panel.Run(cfg, pcfg, o.parallelism)
	} else if o.parallelism > 1 {
		res, _ = core.RunConcurrent(cfg, o.parallelism, o.seed)
	} else {
		// The sequential path is a thin loop over the step-driven session:
		// answer the engine's next question until the run finishes.
		s := core.NewSession(cfg, ids)
		for qs := s.Next(); len(qs) > 0; qs = s.Next() {
			if ctx.Err() != nil {
				break
			}
			next := qs[0]
			if err := s.Submit(next.ID, answerWith(byID[next.Member], next)); err != nil {
				break
			}
		}
		res = s.Close()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return convertResult(db, pl.All, sp, res), nil
}

// Questionnaire renders fact-sets as natural-language questions using the
// per-relation templates of the paper's UI (§6.2).
type Questionnaire struct {
	db  *DB
	tpl *crowd.Templates
}

// NewQuestionnaire returns a questionnaire with the default templates
// (doAt, eatAt) over the DB's vocabulary.
func NewQuestionnaire(db *DB) *Questionnaire {
	return &Questionnaire{db: db, tpl: crowd.NewTemplates(db.voc)}
}

// SetTemplate installs a relation template with two %s verbs, e.g.
// "drink %s with %s".
func (q *Questionnaire) SetTemplate(relation, format string) {
	q.tpl.ByRelation[relation] = format
}

// Concrete renders "How often do you … and also …?" for the triples.
func (q *Questionnaire) Concrete(facts []Triple) (string, error) {
	fs, err := q.db.factSet(facts)
	if err != nil {
		return "", err
	}
	return q.tpl.Concrete(fs), nil
}

// Scale returns the five-point answer scale with its numeric
// interpretation ("never" … "very often").
func Scale() []string {
	out := make([]string, len(crowd.AnswerScale))
	for i, a := range crowd.AnswerScale {
		out[i] = fmt.Sprintf("%s (%.2f)", a.Label, a.Support)
	}
	return out
}

// FormatAnswer renders an Answer for display, marking invalid (generalized)
// patterns.
func FormatAnswer(a Answer) string {
	if a.Valid {
		return a.Text
	}
	return a.Text + "  [generalized]"
}

// ParseTriples parses "S r O. S2 r2 O2" text into triples using the DB's
// vocabulary (multi-word names are resolved like in the paper's Table 3).
func (db *DB) ParseTriples(text string) ([]Triple, error) {
	fs, err := fact.Parse(db.voc, text)
	if err != nil {
		return nil, err
	}
	return db.triples(fs), nil
}

// Terms lists all element names in the DB, sorted; useful for building UIs.
func (db *DB) Terms() []string {
	var out []string
	for t := 0; t < db.voc.Len(); t++ {
		if db.voc.KindOf(vocab.Term(t)) == vocab.Element {
			out = append(out, db.voc.Name(vocab.Term(t)))
		}
	}
	sort.Strings(out)
	return out
}

// Version of the library.
const Version = "1.0.0"
