package oassis

// One benchmark per table/figure of the paper's evaluation (Section 6).
// Each bench regenerates the corresponding experiment at a CI-friendly
// scale and reports the headline quantities (crowd questions, MSPs) as
// custom metrics; `go run ./cmd/oassis-bench -full` regenerates the tables
// at the paper's full scale. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured values.

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"oassis/internal/experiments"
	"oassis/internal/synth"
)

// benchScale keeps per-iteration times around a second.
const benchScale = 0.1

// benchParallel is the experiment-grid worker count used by every bench:
// one worker per CPU (the oassis-bench default). Grid output is identical
// at any worker count, so the numbers below stay comparable across runners;
// only the wall clock changes.
var benchParallel = runtime.GOMAXPROCS(0)

var benchDomainScale = experiments.DomainScale{
	Members: 24, Patterns: 10, Sample: 5, Parallelism: benchParallel,
}

func reportRows(b *testing.B, r *experiments.Report) {
	b.Helper()
	if len(r.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	// Surface the first row's numeric cells as metrics. Metric units must
	// not contain whitespace, so header names are slugified.
	for i, cell := range r.Rows[0] {
		if v, err := strconv.ParseFloat(cell, 64); err == nil && i < len(r.Header) {
			unit := strings.Map(func(c rune) rune {
				if c == ' ' || c == '\t' {
					return '_'
				}
				return c
			}, r.Header[i])
			if unit != "" {
				b.ReportMetric(v, unit)
			}
		}
	}
}

// BenchmarkFig4aTravel regenerates Figure 4a (crowd statistics, travel).
func BenchmarkFig4aTravel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4Domain("fig4a", synth.Travel, benchDomainScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkFig4bCulinary regenerates Figure 4b (crowd statistics, culinary).
func BenchmarkFig4bCulinary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4Domain("fig4b", synth.Culinary, benchDomainScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkFig4cSelfTreatment regenerates Figure 4c.
func BenchmarkFig4cSelfTreatment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4Domain("fig4c", synth.SelfTreatment, benchDomainScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkFig4dPaceTravel regenerates Figure 4d (pace of collection).
func BenchmarkFig4dPaceTravel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4Pace("fig4d", synth.Travel, benchDomainScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkFig4ePaceSelfTreatment regenerates Figure 4e.
func BenchmarkFig4ePaceSelfTreatment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4Pace("fig4e", synth.SelfTreatment, benchDomainScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkFig4fAnswerTypes regenerates Figure 4f (specialization/pruning
// answer-type ratios).
func BenchmarkFig4fAnswerTypes(b *testing.B) {
	cfg := experiments.DefaultFig4f(benchScale)
	cfg.Trials = 2
	cfg.Parallelism = benchParallel
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkFig5Algorithms regenerates Figure 5 (Vertical vs Horizontal vs
// Naive at 2/5/10% MSPs).
func BenchmarkFig5Algorithms(b *testing.B) {
	cfg := experiments.DefaultFig5(benchScale)
	cfg.Trials = 2
	cfg.Parallelism = benchParallel
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkSweepDAGShape regenerates the §6.4 DAG width/depth sweep.
func BenchmarkSweepDAGShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SweepDAGShape(benchScale, 2, benchParallel)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkSweepMSPDistribution regenerates the §6.4 MSP-placement sweep.
func BenchmarkSweepMSPDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SweepMSPDistribution(benchScale, 2, benchParallel)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkSweepMultiplicities regenerates the §6.4 multiplicity sweep and
// the lazy-vs-eager node-generation comparison.
func BenchmarkSweepMultiplicities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SweepMultiplicities(benchScale, 2, benchParallel)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkCrowdSummary regenerates the §6.3 cross-domain run statistics.
func BenchmarkCrowdSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CrowdSummary(benchDomainScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkComplexityBounds checks Propositions 4.7/4.8 empirically.
func BenchmarkComplexityBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ComplexityBounds(benchScale, benchParallel)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row[len(row)-1] != "true" {
				b.Fatalf("complexity bound violated: %v", row)
			}
		}
		reportRows(b, r)
	}
}

// BenchmarkItemsetCapture checks the §4.1 frequent-itemset capture claim.
func BenchmarkItemsetCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ItemsetCapture(12, 60, 0.15, 7)
		if err != nil {
			b.Fatal(err)
		}
		if r.Rows[1][2] != "true" {
			b.Fatal("OASSIS and Apriori disagree")
		}
		reportRows(b, r)
	}
}

// BenchmarkAssocMiner exercises the SIGMOD'13 bridge module (ref [3]).
func BenchmarkAssocMiner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AssocMiner(30, 500, 11)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, r)
	}
}

// BenchmarkRunningExampleE2E measures the paper's running example through
// the public API (ontology + query parse + mining).
func BenchmarkRunningExampleE2E(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := SampleDB()
		q, err := ParseQuery(figure2)
		if err != nil {
			b.Fatal(err)
		}
		members := table3Members(b, db)
		res, err := Exec(db, q, members, WithAnswersPerQuestion(2))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.MSPs) != 3 {
			b.Fatalf("MSPs = %d", len(res.MSPs))
		}
	}
}
